"""Snapshot-completeness rule (whole-program).

PR 7's crash-safe resume promises that ``snapshot()`` → kill →
``restore()`` → continue is byte-identical to an uninterrupted run.
That promise is only as strong as snapshot *coverage*: a new
``self.<attr>`` added to the controller, machine, injector, budget
meter, or harness state that is mutated mid-run but never serialized
resumes at its constructor default — a divergence no unit test sees
until a chaos soak happens to kill at the wrong quantum.  SNAP701
closes that gap statically: in any class defining a capture/restore
method pair, every attribute mutated outside ``__init__`` must be
mentioned by the pair (captured, restored, or deliberately reset).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.engine import ProgramRule, Violation, register
from repro.analysis.program import AttrWrite, ClassInfo, ProgramContext

#: Method names that capture state.  ``state()`` joins the canonical
#: ``snapshot()`` because DecisionBudget uses the ``state``/``restore``
#: spelling; a class only qualifies when it defines BOTH halves, so a
#: lone ``state()`` accessor never drags a class into scope.
CAPTURE_METHODS = frozenset({"snapshot", "to_snapshot", "state"})
RESTORE_METHODS = frozenset({"restore", "from_snapshot"})

#: Lifecycle methods whose writes are initial values, not mid-run
#: mutations the snapshot must carry.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _mentioned_attrs(fn: ast.AST) -> Set[str]:
    """Every ``self.<attr>`` touched (read or written) inside ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out


@register
class SnapshotCompletenessRule(ProgramRule):
    id = "SNAP701"
    title = "mutated attribute missing from the snapshot/restore pair"
    rationale = (
        "Crash-safe resume (docs/robustness.md) is byte-identical only "
        "if every mid-run mutation round-trips through the class's "
        "snapshot/restore pair; a field the pair never mentions resumes "
        "at its constructor default and silently diverges after the "
        "first kill."
    )

    def check_program(self, program: ProgramContext) -> Iterator[Violation]:
        for qual in sorted(program.classes):
            cls = program.classes[qual]
            capture = sorted(set(cls.methods) & CAPTURE_METHODS)
            restore = sorted(set(cls.methods) & RESTORE_METHODS)
            if not capture or not restore:
                continue
            yield from self._check_class(program, cls, capture, restore)

    def _check_class(
        self,
        program: ProgramContext,
        cls: ClassInfo,
        capture: List[str],
        restore: List[str],
    ) -> Iterator[Violation]:
        pair_methods = set(capture) | set(restore)
        covered: Set[str] = set()
        for method in sorted(pair_methods):
            fn = program.functions[cls.methods[method]]
            covered |= _mentioned_attrs(fn.node)
        exempt = pair_methods | _INIT_METHODS
        mutated: Dict[str, AttrWrite] = {}
        for attr in sorted(cls.attr_writes):
            if attr in covered:
                continue
            for write in cls.attr_writes[attr]:
                method_name = (
                    write.method.rsplit(".", 1)[-1]
                    if write.method is not None else ""
                )
                if write.kind != "external" and method_name in exempt:
                    continue
                mutated.setdefault(attr, write)
                break
        pair_label = f"{capture[0]}()/{restore[0]}()"
        for attr in sorted(mutated):
            write = mutated[attr]
            where = (
                f"in {write.method}" if write.method is not None
                else "at class scope"
            )
            yield Violation(
                path=write.path,
                line=write.line,
                col=write.col,
                rule=self.id,
                message=(
                    f"{cls.name}.{attr} is mutated {where} but never "
                    f"mentioned by {cls.name}.{pair_label}; a crash-"
                    "resume silently resets it — capture it, restore "
                    "it, or reset it explicitly in restore()"
                ),
            )

"""Robustness rules: exception handling in the decision-critical core.

The hardened decision loop (``repro.core``) and the fleet executor
(``repro.fleet``) promise that every fault is *accounted for* — a
telemetry counter, a degraded-quantum record, a log line, or a re-raise
into the harness's containment.  A silently swallowed exception breaks
that ledger: the run keeps going, the invariants the chaos harness
checks (docs/robustness.md) still appear to hold, and the fault is
unattributable after the fact.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Packages whose exception handlers must leave a trace.
_SCOPED_PACKAGES = ("repro.core", "repro.fleet")


def _is_silent_body(body: list) -> bool:
    """Whether a handler body swallows without any observable action.

    ``pass``, ``...``, ``continue``/``break`` and bare constant
    expressions (stray docstrings) leave no trace; anything else — a
    raise, a call (logging, counting), an assignment feeding later
    logic, a return of a computed fallback — counts as handling.
    """
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue
        return False
    return True


@register
class SilentExceptionRule(Rule):
    id = "ROB601"
    scope = "file"
    title = "silent exception swallowing in decision-critical code"
    rationale = (
        "repro.core and repro.fleet promise every fault is accounted "
        "for: counted, logged, degraded, or re-raised. An except whose "
        "body is only pass/... swallows the failure invisibly — the "
        "chaos invariants still look healthy while state quietly "
        "corrupts, and contextlib.suppress is the same swallow in "
        "with-statement clothing. Record the fault (telemetry counter, "
        "log line) or let it propagate into the harness's containment."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(*_SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if _is_silent_body(node.body):
                    if node.type is None:
                        caught = "everything (bare except)"
                    elif isinstance(node.type, ast.Tuple):
                        caught = ", ".join(
                            dotted_name(t) or "?" for t in node.type.elts
                        )
                    else:
                        caught = dotted_name(node.type) or "?"
                    yield ctx.violation(
                        self, node,
                        f"except catching {caught} swallows the failure "
                        "with no counter, log, or re-raise; record it "
                        "or let it propagate",
                    )
            elif isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in ("suppress", "contextlib.suppress"):
                    yield ctx.violation(
                        self, node,
                        "contextlib.suppress() swallows exceptions with "
                        "no trace; use an except that records the fault",
                    )

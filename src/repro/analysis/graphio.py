"""Call-graph export for ``repro lint --graph``.

Serializes a :class:`~repro.analysis.program.ProgramContext` as JSON
(the CI artifact format) or Graphviz DOT (picked by a ``.dot`` /
``.gv`` suffix).  Both renderings are fully sorted so the export is
byte-stable across runs — the same determinism contract every other
renderer in this repo honours.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.program import ProgramContext

__all__ = ["graph_to_json", "graph_to_dot", "render_graph"]


def _graph_payload(program: ProgramContext) -> Dict[str, object]:
    functions = [
        {
            "qualname": qual,
            "module": fn.module,
            "path": fn.path,
            "line": fn.line,
            "class": fn.cls,
        }
        for qual, fn in sorted(program.functions.items())
    ]
    edges = [
        {"caller": caller, "callee": callee}
        for caller in sorted(program.call_graph)
        for callee in sorted(program.call_graph[caller])
    ]
    return {
        "classes": sorted(program.classes),
        "decision_roots": program.decision_roots(),
        "edges": edges,
        "fleet_entry_points": program.fleet_entry_points(),
        "functions": functions,
        "modules": sorted(program.modules),
    }


def graph_to_json(program: ProgramContext) -> str:
    """The call graph as pretty-printed, key-sorted JSON."""
    return json.dumps(_graph_payload(program), indent=2, sort_keys=True) + "\n"


def graph_to_dot(program: ProgramContext) -> str:
    """The call graph as a Graphviz digraph.

    Decision roots are drawn as doubled octagons and fleet entry
    points as boxes so the two guarded reachability frontiers are
    visible at a glance.
    """
    decision_roots = set(program.decision_roots())
    fleet_entries = set(program.fleet_entry_points())
    lines: List[str] = [
        "digraph repro_calls {",
        "  rankdir=LR;",
        '  node [fontname="monospace" shape=ellipse];',
    ]
    for qual in sorted(program.functions):
        attrs = []
        if qual in decision_roots:
            attrs.append("shape=doubleoctagon")
        elif qual in fleet_entries:
            attrs.append("shape=box")
        suffix = f" [{' '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{qual}"{suffix};')
    for caller in sorted(program.call_graph):
        for callee in sorted(program.call_graph[caller]):
            lines.append(f'  "{caller}" -> "{callee}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_graph(program: ProgramContext, filename: str) -> str:
    """Pick the format from ``filename``'s suffix (DOT for .dot/.gv)."""
    lowered = filename.lower()
    if lowered.endswith(".dot") or lowered.endswith(".gv"):
        return graph_to_dot(program)
    return graph_to_json(program)

"""Driver for the project-specific static-analysis pass.

The engine parses each Python file once, hands the AST to every
registered :class:`Rule`, filters out violations suppressed with an
inline ``# repro: noqa[RULE]`` comment, and returns a sorted list of
:class:`Violation` records.  Rules live in the ``rules_*`` modules of
this package and self-register via :func:`register`; reporters that
render the results live in :mod:`repro.analysis.reporters`.

Two rule scopes exist.  ``scope = "file"`` rules see one
:class:`LintContext` at a time.  ``scope = "program"`` rules subclass
:class:`ProgramRule` and run once per lint invocation against a
:class:`repro.analysis.program.ProgramContext` — a symbol table and
call graph spanning every file in the run — which is how
cross-file invariants (snapshot completeness, transitive clock
reachability) are checked.  Program-rule violations still honour the
per-line ``noqa`` comments of the file they land in.

See docs/static-analysis.md for the rule catalogue and rationale.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from repro.analysis.cache import LintCache
    from repro.analysis.program import ProgramContext

__all__ = [
    "Violation",
    "LintContext",
    "Rule",
    "ProgramRule",
    "register",
    "all_rules",
    "rule_by_id",
    "dotted_name",
    "module_name_for",
    "lint_source",
    "lint_paths",
    "build_program_context",
    "iter_python_files",
    "PARSE_ERROR_RULE",
]

#: Pseudo-rule id attached to files that fail to parse.
PARSE_ERROR_RULE = "PARSE"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_\s,-]+)\])?"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule violated at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass
class LintContext:
    """Everything a rule needs to inspect one file."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...] = field(default_factory=tuple)

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
        )

    def module_in(self, *packages: str) -> bool:
        """True if this file's module lives under any of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (the suppression token), ``title`` (one
    line), ``rationale`` (why the project forbids the pattern) and
    implement :meth:`check`.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    #: ``"file"`` rules see one file at a time; ``"program"`` rules
    #: (see :class:`ProgramRule`) see the whole-run symbol table.
    scope: str = "file"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        raise NotImplementedError


class ProgramRule(Rule):
    """Base class for a whole-program rule.

    Runs once per lint invocation over the cross-file
    :class:`~repro.analysis.program.ProgramContext` instead of once
    per file.  :meth:`check` is a no-op so the per-file loop can
    iterate the full registry without special-casing.
    """

    scope = "program"

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        return iter(())

    def check_program(self, program: "ProgramContext") -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.id or not rule.title:
        raise ValueError(f"rule {cls.__name__} must define id and title")
    if rule.scope not in ("file", "program"):
        raise ValueError(f"rule {rule.id} has unknown scope {rule.scope!r}")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by id."""
    # Importing the rule modules here (not at module top) avoids a
    # circular import: rules import engine for the base class.
    from repro.analysis import (  # noqa: F401  (imported for side effect)
        rules_determinism,
        rules_fleet,
        rules_rng,
        rules_robustness,
        rules_server,
        rules_snapshot,
        rules_telemetry,
        rules_units,
    )

    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def rule_by_id(rule_id: str) -> Rule:
    all_rules()
    return _REGISTRY[rule_id]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: Path) -> str:
    """Infer the dotted module name from a file path.

    Uses the *last* path component named ``repro`` as the package
    root, so ``src/repro/sim/machine.py`` maps to
    ``repro.sim.machine`` regardless of checkout location.  Files
    outside a ``repro`` tree map to their bare stem.
    """
    parts = path.with_suffix("").parts
    if "repro" in parts:
        root = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        parts = parts[root:]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<unknown>"


def _suppressions(lines: Sequence[str]) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line suppression map.

    ``None`` means a blanket ``# repro: noqa`` (every rule); a frozen
    set names the specific rules silenced on that line.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro" not in text or "noqa" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            names = frozenset(
                token.strip() for token in rules.split(",") if token.strip()
            )
            merged = out.get(lineno, frozenset())
            out[lineno] = None if merged is None else (merged | names)
    return out


def _is_suppressed(
    violation: Violation,
    suppressions: Dict[int, Optional[FrozenSet[str]]],
) -> bool:
    if violation.line not in suppressions:
        return False
    rules = suppressions[violation.line]
    return rules is None or violation.rule in rules


def _parse_context(
    source: str, path: str, module: Optional[str] = None
) -> Tuple[Optional[LintContext], Optional[Violation]]:
    """Parse one file into a context, or a PARSE pseudo-violation."""
    if module is None:
        module = module_name_for(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Violation(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
        )
    return LintContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        lines=tuple(source.splitlines()),
    ), None


def _split_rules(
    rules: Optional[Sequence[Rule]],
) -> Tuple[Tuple[Rule, ...], Tuple["ProgramRule", ...]]:
    active = tuple(all_rules() if rules is None else rules)
    file_rules = tuple(r for r in active if r.scope == "file")
    program_rules = tuple(
        r for r in active
        if r.scope == "program" and isinstance(r, ProgramRule)
    )
    return file_rules, program_rules


def _check_program(
    program_rules: Sequence["ProgramRule"],
    contexts: Sequence[LintContext],
    suppressions_by_path: Dict[str, Dict[int, Optional[FrozenSet[str]]]],
) -> List[Violation]:
    """Run the whole-program rules, honouring per-file suppressions."""
    if not program_rules or not contexts:
        return []
    from repro.analysis.program import ProgramContext

    program = ProgramContext.build(contexts)
    found: List[Violation] = []
    for rule in program_rules:
        for violation in rule.check_program(program):
            per_file = suppressions_by_path.get(violation.path, {})
            if not _is_suppressed(violation, per_file):
                found.append(violation)
    return found


def build_program_context(paths: Iterable[Path]) -> "ProgramContext":
    """Parse every file under ``paths`` into one ProgramContext.

    Used by ``repro lint --graph`` to export the call graph; files
    that fail to parse are skipped (the lint pass itself reports
    them as PARSE violations).
    """
    from repro.analysis.program import ProgramContext

    contexts: List[LintContext] = []
    for path in iter_python_files(paths):
        ctx, _ = _parse_context(path.read_text(encoding="utf-8"), str(path))
        if ctx is not None:
            contexts.append(ctx)
    return ProgramContext.build(contexts)


def lint_source(
    source: str,
    path: str = "<memory>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Violation]:
    """Lint one file's source text; returns sorted violations.

    ``module`` overrides the path-derived module name (used by tests
    to place fixtures inside restricted packages like ``repro.sim``).
    Whole-program rules run over a single-file program context, so
    fixtures exercise them exactly like per-file rules.
    """
    ctx, parse_error = _parse_context(source, path, module)
    if ctx is None:
        return [parse_error] if parse_error is not None else []
    suppressions = _suppressions(ctx.lines)
    file_rules, program_rules = _split_rules(rules)
    found: List[Violation] = []
    for rule in file_rules:
        for violation in rule.check(ctx):
            if not _is_suppressed(violation, suppressions):
                found.append(violation)
    found.extend(
        _check_program(program_rules, [ctx], {ctx.path: suppressions})
    )
    return sorted(found)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen = set()
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    for path in collected:
        key = str(path)
        if key not in seen:
            seen.add(key)
            yield path


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence[Rule]] = None,
    cache: Optional["LintCache"] = None,
) -> List[Violation]:
    """Lint every Python file under ``paths``; returns sorted violations.

    The per-file rules run (and cache) independently per file; the
    whole-program rules then run once over every file that parsed.
    With a ``cache``, unchanged files reuse their stored per-file
    violations and an unchanged *file set* reuses the stored program
    pass — output is byte-identical either way because suppressions
    and rule logic are part of the cache key.
    """
    file_rules, program_rules = _split_rules(rules)
    found: List[Violation] = []
    contexts: List[LintContext] = []
    suppressions_by_path: Dict[
        str, Dict[int, Optional[FrozenSet[str]]]
    ] = {}
    digests: List[Tuple[str, str]] = []
    for path in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        path_key = str(path)
        digest = None
        if cache is not None:
            digest = cache.file_digest(source)
        ctx, parse_error = _parse_context(source, path_key)
        if ctx is None:
            if parse_error is not None:
                found.append(parse_error)
            continue
        suppressions = _suppressions(ctx.lines)
        suppressions_by_path[path_key] = suppressions
        contexts.append(ctx)
        if digest is not None:
            digests.append((path_key, digest))
        cached = (
            cache.get_file(path_key, digest)
            if cache is not None and digest is not None
            else None
        )
        if cached is not None:
            found.extend(cached)
            continue
        file_found: List[Violation] = []
        for rule in file_rules:
            for violation in rule.check(ctx):
                if not _is_suppressed(violation, suppressions):
                    file_found.append(violation)
        found.extend(file_found)
        if cache is not None and digest is not None:
            cache.set_file(path_key, digest, file_found)
    if program_rules and contexts:
        program_key = (
            cache.program_key(digests) if cache is not None else None
        )
        cached_program = (
            cache.get_program(program_key)
            if cache is not None and program_key is not None
            else None
        )
        if cached_program is not None:
            found.extend(cached_program)
        else:
            program_found = _check_program(
                program_rules, contexts, suppressions_by_path
            )
            found.extend(program_found)
            if cache is not None and program_key is not None:
                cache.set_program(program_key, program_found)
    if cache is not None:
        cache.save()
    return sorted(found)

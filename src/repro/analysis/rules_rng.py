"""RNG-stream hygiene rules.

PR 2's fault injector gives every fault spec its own generator so that
injecting one fault never shifts another stream's draws; the same
discipline applies everywhere: a function that is *handed* a stream
(an ``rng`` parameter) must draw from it, and exception paths must not
consume draws (the regression class fixed by hand in
``Machine._noisy`` — see docs/robustness.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Union

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Methods of :class:`numpy.random.Generator` that consume draws.
_DRAW_METHODS = frozenset({
    "normal", "uniform", "integers", "random", "choice", "shuffle",
    "permutation", "permuted", "standard_normal", "exponential",
    "poisson", "lognormal", "beta", "gamma", "binomial", "bytes",
    "spawn",
})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _rng_params(node: _FunctionNode) -> bool:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return any(name == "rng" or name.endswith("_rng") for name in names)


def _is_generator_constructor(node: ast.Call) -> Optional[str]:
    target = dotted_name(node.func)
    if target is None:
        return None
    if target == "default_rng" or target.endswith(".default_rng"):
        return target
    if target == "rng_for" or target.endswith(".rng_for"):
        return target
    if target in ("np.random.Generator", "numpy.random.Generator",
                  "random.Random"):
        return target
    return None


@register
class NewGeneratorInRngFunctionRule(Rule):
    id = "RNG201"
    title = "function taking an rng parameter constructs a new generator"
    rationale = (
        "A caller hands a function its stream precisely so the draw "
        "sequence is owned in one place; minting a second generator "
        "inside forks the stream and silently decouples the function "
        "from the seed the caller controls."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _rng_params(node):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    target = _is_generator_constructor(inner)
                    if target is not None:
                        yield ctx.violation(
                            self, inner,
                            f"{node.name}() accepts an rng parameter but "
                            f"constructs a new generator via {target}(); "
                            "draw from (or rng.spawn() off) the parameter",
                        )


def _looks_like_rng(target: Optional[str]) -> bool:
    if target is None:
        return False
    tail = target.rsplit(".", 1)[-1]
    return "rng" in tail.lower()


@register
class DrawInExceptHandlerRule(Rule):
    id = "RNG202"
    title = "RNG draw consumed inside an except handler"
    rationale = (
        "Error paths fire data-dependently, so a draw inside an "
        "except handler shifts every later sample only on the runs "
        "that fault — exactly what broke seed-exact replay before "
        "Machine._noisy was fixed to return NaN without drawing."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if not isinstance(inner, ast.Call):
                        continue
                    func = inner.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    if func.attr not in _DRAW_METHODS:
                        continue
                    receiver = dotted_name(func.value)
                    if _looks_like_rng(receiver):
                        yield ctx.violation(
                            self, inner,
                            f"{receiver}.{func.attr}() inside an except "
                            "handler consumes draws only on faulting "
                            "runs, breaking seed-exact replay; compute "
                            "the fallback without the RNG",
                        )

"""RNG-stream hygiene rules.

PR 2's fault injector gives every fault spec its own generator so that
injecting one fault never shifts another stream's draws; the same
discipline applies everywhere: a function that is *handed* a stream
(an ``rng`` parameter) must draw from it, and exception paths must not
consume draws (the regression class fixed by hand in
``Machine._noisy`` — see docs/robustness.md).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple, Union

if TYPE_CHECKING:
    from repro.analysis.program import ProgramContext, RngForCall

from repro.analysis.engine import (
    LintContext,
    ProgramRule,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Methods of :class:`numpy.random.Generator` that consume draws.
_DRAW_METHODS = frozenset({
    "normal", "uniform", "integers", "random", "choice", "shuffle",
    "permutation", "permuted", "standard_normal", "exponential",
    "poisson", "lognormal", "beta", "gamma", "binomial", "bytes",
    "spawn",
})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _rng_params(node: _FunctionNode) -> bool:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return any(name == "rng" or name.endswith("_rng") for name in names)


def _is_generator_constructor(node: ast.Call) -> Optional[str]:
    target = dotted_name(node.func)
    if target is None:
        return None
    if target == "default_rng" or target.endswith(".default_rng"):
        return target
    if target == "rng_for" or target.endswith(".rng_for"):
        return target
    if target in ("np.random.Generator", "numpy.random.Generator",
                  "random.Random"):
        return target
    return None


@register
class NewGeneratorInRngFunctionRule(Rule):
    id = "RNG201"
    scope = "file"
    title = "function taking an rng parameter constructs a new generator"
    rationale = (
        "A caller hands a function its stream precisely so the draw "
        "sequence is owned in one place; minting a second generator "
        "inside forks the stream and silently decouples the function "
        "from the seed the caller controls."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _rng_params(node):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Call):
                    target = _is_generator_constructor(inner)
                    if target is not None:
                        yield ctx.violation(
                            self, inner,
                            f"{node.name}() accepts an rng parameter but "
                            f"constructs a new generator via {target}(); "
                            "draw from (or rng.spawn() off) the parameter",
                        )


def _looks_like_rng(target: Optional[str]) -> bool:
    if target is None:
        return False
    tail = target.rsplit(".", 1)[-1]
    return "rng" in tail.lower()


@register
class DrawInExceptHandlerRule(Rule):
    id = "RNG202"
    scope = "file"
    title = "RNG draw consumed inside an except handler"
    rationale = (
        "Error paths fire data-dependently, so a draw inside an "
        "except handler shifts every later sample only on the runs "
        "that fault — exactly what broke seed-exact replay before "
        "Machine._noisy was fixed to return NaN without drawing."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if not isinstance(inner, ast.Call):
                        continue
                    func = inner.func
                    if not isinstance(func, ast.Attribute):
                        continue
                    if func.attr not in _DRAW_METHODS:
                        continue
                    receiver = dotted_name(func.value)
                    if _looks_like_rng(receiver):
                        yield ctx.violation(
                            self, inner,
                            f"{receiver}.{func.attr}() inside an except "
                            "handler consumes draws only on faulting "
                            "runs, breaking seed-exact replay; compute "
                            "the fallback without the RNG",
                        )


@register
class StreamLineageRule(ProgramRule):
    id = "RNG203"
    title = "rng_for stream collision or RNG object crossing a WorkUnit boundary"
    rationale = (
        "rng_for keys streams by (name, salt): two call sites deriving "
        "the same key share one stream, so a draw at one site shifts "
        "the other's sequence. Likewise, an RNG object baked into a "
        "WorkUnit's arguments carries parent-process generator state "
        "across the fork boundary; units must re-derive their streams "
        "from plain unit arguments via rng_for."
    )

    def check_program(self, program: "ProgramContext") -> Iterator[Violation]:
        yield from self._check_collisions(program)
        yield from self._check_workunit_escapes(program)

    def _check_collisions(
        self, program: "ProgramContext"
    ) -> Iterator[Violation]:
        by_key: Dict[Tuple[str, str], List["RngForCall"]] = {}
        for call in program.rng_for_calls:
            key = call.constant_key
            if key is not None:
                by_key.setdefault(key, []).append(call)
        for key in sorted(by_key):
            sites = sorted(
                {(c.path, c.line, c.col) for c in by_key[key]}
            )
            if len(sites) < 2:
                continue
            first = sites[0]
            name, salt = key
            label = f"rng_for({name!r}, salt={salt!r})"
            for path, line, col in sites[1:]:
                yield Violation(
                    path=path, line=line, col=col, rule=self.id,
                    message=(
                        f"{label} derives the same stream as "
                        f"{first[0]}:{first[1]}; colliding call sites "
                        "share one generator, so draws at one shift "
                        "the other — pick a distinct name or salt"
                    ),
                )

    def _check_workunit_escapes(
        self, program: "ProgramContext"
    ) -> Iterator[Violation]:
        for qual in sorted(program.functions):
            fn = program.functions[qual]
            rng_names = self._rng_bound_names(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = dotted_name(node.func)
                if target is None or \
                        target.rsplit(".", 1)[-1] != "WorkUnit":
                    continue
                for culprit, culprit_node in self._rng_valued_args(
                    node, rng_names
                ):
                    yield Violation(
                        path=fn.path,
                        line=culprit_node.lineno,
                        col=culprit_node.col_offset,
                        rule=self.id,
                        message=(
                            f"{culprit} escapes into a WorkUnit in "
                            f"{fn.name}(); generator state does not "
                            "survive the process boundary — pass the "
                            "seed/name and re-derive with rng_for "
                            "inside the unit"
                        ),
                    )

    @staticmethod
    def _rng_bound_names(fn: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            if not isinstance(node.value, ast.Call):
                continue
            if _is_generator_constructor(node.value) is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _rng_valued_args(
        call: ast.Call, rng_names: Set[str]
    ) -> Iterator[Tuple[str, ast.AST]]:
        values: List[ast.AST] = list(call.args)
        values.extend(kw.value for kw in call.keywords)
        for value in values:
            for node in ast.walk(value):
                if isinstance(node, ast.Name) and node.id in rng_names:
                    yield f"RNG object {node.id!r}", node
                elif isinstance(node, ast.Call):
                    target = _is_generator_constructor(node)
                    if target is not None:
                        yield f"generator from {target}()", node

"""Server event-loop hygiene rules.

The scheduler daemon (:mod:`repro.server`) multiplexes every client on
one asyncio event loop; a single blocking call inside an ``async def``
stalls all of them — submissions queue behind a sleeping coroutine,
subscription streams freeze, and the real-time pacer drifts.  SRV801
polices the lexical bodies of ``async def`` functions under
``repro.server`` for the blocking primitives that have non-blocking
counterparts: wall-clock sleeps, raw-socket I/O, and synchronous file
I/O.  Synchronous helpers are the sanctioned escape hatch — a plain
``def`` doing bounded file I/O is fine, and the rule only looks inside
coroutine bodies, so routing blocking work through one (or through
``loop.run_in_executor`` for unbounded work) is the fix.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Socket methods/functions that block the calling thread.
_BLOCKING_SOCKET_ATTRS = frozenset({
    "recv", "recv_into", "recvfrom", "sendall", "accept", "connect",
    "makefile", "create_connection",
})

#: ``pathlib.Path`` convenience I/O — synchronous under the hood.
_PATH_IO_ATTRS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
})


def _awaited_calls(fn: ast.AsyncFunctionDef) -> Set[int]:
    """ids of Call nodes that are directly awaited."""
    return {
        id(node.value)
        for node in ast.walk(fn)
        if isinstance(node, ast.Await)
        and isinstance(node.value, ast.Call)
    }


@register
class ServerBlockingIORule(Rule):
    id = "SRV801"
    scope = "file"
    title = "blocking I/O inside an async def under repro.server"
    rationale = (
        "Every daemon client shares one event loop; a blocking call "
        "inside a coroutine stalls all connections at once — "
        "time.sleep() freezes the pacer and every subscriber, raw "
        "socket recv()/sendall() bypasses the stream layer and blocks "
        "the loop thread, and synchronous open()/Path I/O pauses "
        "serving for the duration of the disk write. Use asyncio.sleep "
        "and the StreamReader/StreamWriter API, or move the blocking "
        "work into a plain sync helper (bounded) or "
        "loop.run_in_executor (unbounded)."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in("repro.server"):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, ast.AsyncFunctionDef):
                continue
            awaited = _awaited_calls(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if id(node) in awaited:
                    # Awaited calls yield to the loop (asyncio.sleep,
                    # loop.sock_recv, ...): exactly the fix we want.
                    continue
                yield from self._check_call(ctx, fn, node)

    def _check_call(
        self, ctx: LintContext, fn: ast.AsyncFunctionDef, node: ast.Call
    ) -> Iterator[Violation]:
        target = dotted_name(node.func)
        # -- wall-clock sleeps --------------------------------------
        if target in ("time.sleep", "sleep"):
            yield ctx.violation(
                self, node,
                f"{target}() blocks the event loop inside async "
                f"{fn.name}(); await asyncio.sleep() instead",
            )
            return
        # -- synchronous file opens ---------------------------------
        if target in ("open", "io.open", "builtins.open"):
            yield ctx.violation(
                self, node,
                f"synchronous open() inside async {fn.name}() stalls "
                "every connection while the disk call runs; move the "
                "I/O into a sync helper or run_in_executor",
            )
            return
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        # -- raw socket I/O -----------------------------------------
        if attr in _BLOCKING_SOCKET_ATTRS:
            yield ctx.violation(
                self, node,
                f".{attr}() is blocking socket I/O inside async "
                f"{fn.name}(); use the asyncio stream API "
                "(StreamReader/StreamWriter) instead",
            )
            return
        # -- pathlib convenience I/O --------------------------------
        if attr in _PATH_IO_ATTRS:
            yield ctx.violation(
                self, node,
                f".{attr}() is synchronous file I/O inside async "
                f"{fn.name}(); move it into a sync helper or "
                "run_in_executor",
            )

"""Render lint results as text (for humans) or JSON (for tooling)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Violation, all_rules


def render_text(violations: Sequence[Violation]) -> str:
    """One clickable ``path:line:col: RULE message`` line per finding."""
    if not violations:
        return "ok: no static-analysis violations"
    lines = [v.format() for v in violations]
    by_rule: Dict[str, int] = {}
    for v in violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    summary = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(f"{len(violations)} violation(s): {summary}")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Stable machine-readable report (``count`` + ``violations``)."""
    payload = {
        "count": len(violations),
        "violations": [v.to_dict() for v in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def describe_rules() -> str:
    """Human-readable catalogue of every registered rule."""
    blocks: List[str] = []
    for rule in all_rules():
        blocks.append(
            f"{rule.id}  {rule.title}\n    {rule.rationale}"
        )
    blocks.append(
        "suppress one finding with `# repro: noqa[RULE]` on its line "
        "(comma-separate several rules; bare `# repro: noqa` silences "
        "the whole line)"
    )
    return "\n".join(blocks)

"""Project-specific static analysis (``python -m repro lint``).

An AST-based lint pass enforcing the cross-cutting invariants the
reproduction's correctness rests on: determinism (DET1xx), RNG-stream
hygiene (RNG2xx), unit/invariant discipline (UNIT3xx), telemetry span
hygiene (TEL4xx), fleet fork-safety (FLT5xx), robustness (ROB6xx), and
snapshot completeness (SNAP7xx).  Per-file rules see one
:class:`LintContext`; whole-program rules (:class:`ProgramRule`)
additionally see a :class:`ProgramContext` — a symbol table and call
graph over every file in the run.  See docs/static-analysis.md.
"""

from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    LintContext,
    ProgramRule,
    Rule,
    Violation,
    all_rules,
    build_program_context,
    dotted_name,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
    register,
    rule_by_id,
)
from repro.analysis.graphio import graph_to_dot, graph_to_json, render_graph
from repro.analysis.program import ProgramContext
from repro.analysis.reporters import describe_rules, render_json, render_text

__all__ = [
    "DEFAULT_CACHE_NAME",
    "LintCache",
    "PARSE_ERROR_RULE",
    "LintContext",
    "ProgramContext",
    "ProgramRule",
    "Rule",
    "Violation",
    "all_rules",
    "build_program_context",
    "describe_rules",
    "dotted_name",
    "graph_to_dot",
    "graph_to_json",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
    "render_graph",
    "render_json",
    "render_text",
    "rule_by_id",
]

"""Project-specific static analysis (``python -m repro lint``).

An AST-based lint pass enforcing the cross-cutting invariants the
reproduction's correctness rests on: determinism (DET1xx), RNG-stream
hygiene (RNG2xx), unit/invariant discipline (UNIT3xx), and telemetry
span hygiene (TEL4xx).  See docs/static-analysis.md.
"""

from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    LintContext,
    Rule,
    Violation,
    all_rules,
    dotted_name,
    iter_python_files,
    lint_paths,
    lint_source,
    module_name_for,
    register,
    rule_by_id,
)
from repro.analysis.reporters import describe_rules, render_json, render_text

__all__ = [
    "PARSE_ERROR_RULE",
    "LintContext",
    "Rule",
    "Violation",
    "all_rules",
    "describe_rules",
    "dotted_name",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "register",
    "render_json",
    "render_text",
    "rule_by_id",
]

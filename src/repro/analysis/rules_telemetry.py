"""Telemetry hygiene rules.

Spans measure wall-time between ``__enter__`` and ``__exit__``; a span
opened outside a ``with`` block leaks on any exception path, which
corrupts the nesting stack and every enclosing span's self-time
(docs/observability.md).

Metric names are a public-ish surface: exporters, dashboards, and the
regression-gate baselines all key on them, so TEL402 pins the naming
convention (dot-namespaced, ``owner.event`` style) and catches the
same literal name being registered as two different instrument kinds.

TEL403 guards the live event bus: inside the streaming modules
(``repro.telemetry.live`` and ``repro.fleet``) a bare blocking
``queue.put`` can stall a fleet worker behind a slow consumer, and a
bare ``put_nowait`` silently loses the event.  Every enqueue must go
through the drop-accounting ``offer`` helper or carry a ``timeout=``
(with an explicit suppression where the blocking put is the point,
e.g. the result queue).

TEL404 keeps the metrics reference honest: every literal metric name
registered in the live tree must have a row in
``repro.telemetry.metrics_doc.METRICS_REFERENCE`` — the registry the
docs/observability.md table is generated from — so a new metric cannot
ship undocumented.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, Set, Tuple

from repro.analysis.engine import (
    LintContext,
    ProgramRule,
    Rule,
    Violation,
    dotted_name,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.program import ProgramContext


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    tail = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in tail for hint in ("trace", "tracer", "telemetry"))


@register
class SpanOutsideWithRule(Rule):
    id = "TEL401"
    scope = "file"
    title = "tracer span opened outside a with statement"
    rationale = (
        "A span not bound to a with block never closes on exceptions, "
        "leaving the tracer's span stack unbalanced and every "
        "enclosing span's timing wrong.  Forwarding a freshly built "
        "span out of a helper (return tracer.span(...)) is the one "
        "allowed non-with use."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        allowed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    allowed.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                allowed.add(id(node.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_span_call(node):
                continue
            if id(node) in allowed:
                continue
            yield ctx.violation(
                self, node,
                "span() opened outside a with statement; use "
                "`with tracer.span(...):` so exit runs on every path",
            )


_METRIC_FACTORIES = ("counter", "gauge", "histogram")
#: Dot-namespaced lowercase identifiers: ``harness.job_churn``,
#: ``accuracy.drift.flags`` — at least one dot, no leading digits.
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


def _metric_registration(node: ast.Call) -> Tuple[str, str]:
    """``(kind, literal_name)`` when this is a checkable registration.

    Only literal-string first arguments are checked; dynamic names
    (f-strings like ``f"accuracy.app.{name}"``, variables) are exempt
    because their shape cannot be validated statically.
    """
    func = node.func
    if not isinstance(func, ast.Attribute):
        return "", ""
    if func.attr not in _METRIC_FACTORIES:
        return "", ""
    receiver = dotted_name(func.value)
    if receiver is None:
        return "", ""
    tail = receiver.rsplit(".", 1)[-1].lower()
    hinted = any(
        hint in tail for hint in ("metrics", "registry", "telemetry")
    )
    if not hinted and receiver != "self":
        return "", ""
    if not node.args:
        return "", ""
    first = node.args[0]
    if not isinstance(first, ast.Constant) or not isinstance(
        first.value, str
    ):
        return "", ""
    return func.attr, first.value


@register
class MetricNameConventionRule(Rule):
    id = "TEL402"
    scope = "file"
    title = "metric name off-convention or registered as two kinds"
    rationale = (
        "Exporters, docs, and the bench/CI baselines key on metric "
        "names, so they must be stable dot-namespaced identifiers "
        "(`owner.event`, lowercase, at least one dot).  Registering "
        "the same name as two instrument kinds (counter and gauge, "
        "say) silently forks state in the registry, and the exports "
        "become ambiguous."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        kinds_seen: Dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            kind, name = _metric_registration(node)
            if not kind:
                continue
            if not _METRIC_NAME.match(name):
                yield ctx.violation(
                    self, node,
                    f"metric name {name!r} is off-convention; use "
                    "dot-namespaced lowercase `owner.event` names "
                    "(e.g. 'harness.job_churn')",
                )
                continue
            prior = kinds_seen.setdefault(name, kind)
            if prior != kind:
                yield ctx.violation(
                    self, node,
                    f"metric {name!r} registered as both {prior} and "
                    f"{kind}; one name must map to one instrument kind",
                )


@register
class MetricUndocumentedRule(ProgramRule):
    id = "TEL404"
    title = "metric registered in the live tree but missing from the metrics reference"
    rationale = (
        "The docs/observability.md metrics table is generated from "
        "repro.telemetry.metrics_doc.METRICS_REFERENCE; a literal "
        "registration without a row there is a metric operators can "
        "see in exports but cannot look up.  Add a MetricDoc row "
        "(name, kind, unit, module, description).  Dynamic f-string "
        "names are exempt here but must be documented as explicit "
        "{placeholder} family rows."
    )

    def check_program(
        self, program: "ProgramContext"
    ) -> Iterator[Violation]:
        # Imported lazily: the analysis package must stay importable
        # without pulling the telemetry tree in at module scope.
        from repro.telemetry.metrics_doc import documented_names

        documented = documented_names()
        for mod in program.modules.values():
            if not (
                mod.module == "repro"
                or mod.module.startswith("repro.")
            ):
                continue
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                kind, name = _metric_registration(node)
                if not kind:
                    continue
                # Off-convention names are TEL402's finding; flagging
                # them twice would just be noise.
                if not _METRIC_NAME.match(name):
                    continue
                if name in documented:
                    continue
                yield Violation(
                    path=mod.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"metric {name!r} ({kind}) has no row in "
                        "METRICS_REFERENCE (repro.telemetry."
                        "metrics_doc); document it so the generated "
                        "docs table stays complete"
                    ),
                )


def _queue_receiver(node: ast.Call) -> str:
    """The dotted receiver when this call targets a queue-ish object."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return ""
    receiver = dotted_name(func.value)
    if receiver is None:
        return ""
    tail = receiver.rsplit(".", 1)[-1].lower()
    if tail == "q" or tail.endswith("_q") or "queue" in tail:
        return receiver
    return ""


@register
class UnboundedQueuePutRule(Rule):
    id = "TEL403"
    scope = "file"
    title = "queue put without timeout or drop accounting on the event bus"
    rationale = (
        "The live event bus must never stall a fleet worker behind a "
        "slow consumer (blocking put) and must never lose an event "
        "without a trace (bare put_nowait).  Inside repro.telemetry."
        "live and repro.fleet, enqueue through the offer() helper, "
        "which drops-with-counter on backpressure, or give the put an "
        "explicit timeout=.  Control-plane puts where blocking is the "
        "point (task/result queues) carry a per-line suppression."
    )

    #: Only the streaming modules are in scope; queues elsewhere are
    #: not part of the event-bus contract.
    _MODULES = ("repro.telemetry.live", "repro.fleet")

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(*self._MODULES):
            return
        # The offer() helpers *are* the drop-accounting path; their
        # bodies legitimately call put_nowait.
        offer_lines: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and "offer" in node.name:
                for child in ast.walk(node):
                    if isinstance(child, ast.Call):
                        offer_lines.add(id(child))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = _queue_receiver(node)
            if not receiver:
                continue
            if func.attr == "put":
                if any(kw.arg == "timeout" for kw in node.keywords):
                    continue
                yield ctx.violation(
                    self, node,
                    f"blocking {receiver}.put() on the event bus; use "
                    "offer() (drop-with-counter) or pass timeout=",
                )
            elif func.attr == "put_nowait":
                if id(node) in offer_lines:
                    continue
                yield ctx.violation(
                    self, node,
                    f"bare {receiver}.put_nowait() loses events "
                    "silently on backpressure; enqueue through "
                    "offer() so drops are counted",
                )

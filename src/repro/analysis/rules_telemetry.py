"""Telemetry hygiene rules.

Spans measure wall-time between ``__enter__`` and ``__exit__``; a span
opened outside a ``with`` block leaks on any exception path, which
corrupts the nesting stack and every enclosing span's self-time
(docs/observability.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)


def _is_span_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "span":
        return False
    receiver = dotted_name(func.value)
    if receiver is None:
        return False
    tail = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in tail for hint in ("trace", "tracer", "telemetry"))


@register
class SpanOutsideWithRule(Rule):
    id = "TEL401"
    title = "tracer span opened outside a with statement"
    rationale = (
        "A span not bound to a with block never closes on exceptions, "
        "leaving the tracer's span stack unbalanced and every "
        "enclosing span's timing wrong.  Forwarding a freshly built "
        "span out of a helper (return tracer.span(...)) is the one "
        "allowed non-with use."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        allowed: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    allowed.add(id(item.context_expr))
            elif isinstance(node, ast.Return) and node.value is not None:
                allowed.add(id(node.value))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not _is_span_call(node):
                continue
            if id(node) in allowed:
                continue
            yield ctx.violation(
                self, node,
                "span() opened outside a with statement; use "
                "`with tracer.span(...):` so exit runs on every path",
            )

"""Whole-program symbol table, call graph, and dataflow summaries.

The per-file rules in ``rules_*`` see one AST at a time, which is
enough for local hygiene (an unseeded generator, a float ``==``) but
blind to the cross-file invariants the reproduction actually rests on:
a snapshot method in ``controller.py`` must cover a field mutated in a
helper three calls away, and a wall clock is just as poisonous when it
is reached *transitively* from the decision loop.  This module builds
the interprocedural context those rules need:

* a **symbol table** over every parsed file — modules, classes (with
  per-class attribute-write and attribute-type summaries), functions,
  and import aliases;
* a **call graph** resolved in tiers — exact (module-local names,
  import aliases, ``self.method``, locals/parameters with inferred
  class types, ``self.attr`` fields typed from ``__init__``) with a
  class-hierarchy fallback that links ``obj.method()`` to every known
  class defining ``method`` when the receiver's type is unknown;
* **RNG-lineage summaries** — every ``rng_for`` call site with its
  statically-known ``(name, salt)`` stream key;
* root finders for the decision hot path (DET105) and the fleet worker
  entry points (FLT502).

Whole-program rules subclass :class:`repro.analysis.engine.ProgramRule`
and receive one :class:`ProgramContext` per lint run.  The graph is an
over-approximation by design: for a *guard* rule, a spurious edge costs
a reviewable ``# repro: noqa[...]``, while a missing edge silently
waives the invariant.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import LintContext, dotted_name

__all__ = [
    "AttrWrite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "ProgramContext",
    "RngForCall",
]

#: Method names whose call mutates the receiver in place.  Used both
#: for attribute-write summaries (``self.cache.update(...)`` mutates
#: ``cache``) and module-global mutation detection.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "remove", "setdefault",
    "sort", "update",
})

#: Call targets (last dotted segment) that construct an RNG stream.
RNG_CONSTRUCTORS = frozenset({
    "default_rng", "rng_for", "Generator", "RandomState", "Random",
    "SeedSequence",
})


@dataclass(frozen=True)
class AttrWrite:
    """One mutation of ``<instance>.attr`` somewhere in the program."""

    attr: str
    path: str
    line: int
    col: int
    #: Qualified name of the enclosing function/method (``None`` for
    #: writes at class body scope).
    method: Optional[str]
    #: ``assign`` / ``augassign`` / ``subscript`` / ``mutator`` /
    #: ``external`` (written through a typed variable outside the class).
    kind: str


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qualname: str
    name: str
    module: str
    path: str
    line: int
    node: ast.AST
    #: Owning class qualname for methods, else None.
    cls: Optional[str] = None
    #: Local variable name -> class qualname, inferred from parameter
    #: annotations and ``x = ClassName(...)`` assignments.
    var_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ClassInfo:
    """One class definition plus its attribute summaries."""

    qualname: str
    name: str
    module: str
    path: str
    line: int
    node: ast.ClassDef
    base_names: Tuple[str, ...] = ()
    #: method name -> function qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> class qualname, inferred from ``__init__``.
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> every write site, in source order.
    attr_writes: Dict[str, List[AttrWrite]] = field(default_factory=dict)


@dataclass(frozen=True)
class RngForCall:
    """One ``rng_for(...)`` call site with its static stream key."""

    path: str
    line: int
    col: int
    module: str
    #: Statically-known ``name`` argument, None when dynamic.
    name_const: Optional[str]
    #: Statically-known ``salt`` argument ("" when omitted), None when
    #: dynamic.
    salt_const: Optional[str]

    @property
    def constant_key(self) -> Optional[Tuple[str, str]]:
        """The ``(name, salt)`` stream key when fully static."""
        if self.name_const is None or self.salt_const is None:
            return None
        return (self.name_const, self.salt_const)


@dataclass
class ModuleInfo:
    """Per-module symbol scope."""

    module: str
    path: str
    tree: ast.Module
    #: local name -> dotted import target (``np`` -> ``numpy``,
    #: ``rng_for`` -> ``repro.rng.rng_for``).
    aliases: Dict[str, str] = field(default_factory=dict)
    #: local function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: local class name -> qualname.
    classes: Dict[str, str] = field(default_factory=dict)
    #: names bound at module scope (candidates for shared-state
    #: mutation checks) -> first binding line.
    globals: Dict[str, int] = field(default_factory=dict)


def _const_str(node: ast.AST) -> Optional[str]:
    """The literal string value of ``node``, None when dynamic."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    """Best-effort dotted class name out of an annotation node."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the trailing identifier path.
        text = node.value.strip()
        return text if text.replace(".", "_").isidentifier() else None
    if isinstance(node, (ast.Name, ast.Attribute)):
        return dotted_name(node)
    if isinstance(node, ast.Subscript):
        # Optional[X] / list[X]-style wrappers: look inside.
        wrapper = dotted_name(node.value)
        if wrapper and wrapper.rsplit(".", 1)[-1] == "Optional":
            return _annotation_name(node.slice)
    return None


def _write_root(target: ast.AST) -> Optional[Tuple[str, str, str]]:
    """Decompose a store target into ``(receiver, attr, kind)``.

    ``self._rng.bit_generator.state = ...`` roots at ``("self",
    "_rng", "assign")``: the deepest attribute chain is a mutation of
    the first-level field.  Returns None for plain-name targets.
    """
    kind = "assign"
    node = target
    while isinstance(node, ast.Subscript):
        node = node.value
        kind = "subscript"
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
        while isinstance(node, ast.Subscript):
            node = node.value
            kind = "subscript"
    if not chain or not isinstance(node, ast.Name):
        return None
    return (node.id, chain[-1], kind)


def _mutator_root(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``("self", "cache")`` for ``self.cache.update(...)``-style calls."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr not in MUTATOR_METHODS:
        return None
    node = func.value
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if not chain:
        # NAME.update(...) — a bare-name receiver (module global).
        return (node.id, "")
    return (node.id, chain[-1])


class ProgramContext:
    """Symbol table + call graph over every file in one lint run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: method name -> qualnames of every class method so named
        #: (the class-hierarchy fallback tier).
        self.method_index: Dict[str, Set[str]] = {}
        #: caller qualname -> callee qualnames.
        self.call_graph: Dict[str, Set[str]] = {}
        self.rng_for_calls: List[RngForCall] = []
        #: Functions handed to ``Process(target=...)`` inside
        #: ``repro.fleet`` or to ``WorkUnit(fn=...)`` anywhere.
        self.fleet_entries: Set[str] = set()

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[LintContext]) -> "ProgramContext":
        """Index every file, then resolve calls into the graph."""
        program = cls()
        ordered = [
            ctx for ctx in contexts
            if program._index_module(ctx)
        ]
        for ctx in ordered:
            program._collect_bodies(ctx)
        return program

    def _index_module(self, ctx: LintContext) -> bool:
        """Pass 1: register one module's symbols.  False on collision."""
        if ctx.module in self.modules:
            return False
        mod = ModuleInfo(module=ctx.module, path=ctx.path, tree=ctx.tree)
        self.modules[ctx.module] = mod
        for stmt in ctx.tree.body:
            self._index_statement(mod, stmt)
        return True

    def _index_statement(self, mod: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else local
                mod.aliases[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is not None and stmt.level == 0:
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    mod.aliases[local] = f"{stmt.module}.{alias.name}"
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{mod.module}.{stmt.name}"
            mod.functions[stmt.name] = qual
            self.functions[qual] = FunctionInfo(
                qualname=qual, name=stmt.name, module=mod.module,
                path=mod.path, line=stmt.lineno, node=stmt,
            )
        elif isinstance(stmt, ast.ClassDef):
            self._index_class(mod, stmt)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    mod.globals.setdefault(target.id, stmt.lineno)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks.
            for inner in ast.iter_child_nodes(stmt):
                if isinstance(inner, ast.stmt):
                    self._index_statement(mod, inner)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.module}.{node.name}"
        mod.classes[node.name] = qual
        info = ClassInfo(
            qualname=qual, name=node.name, module=mod.module,
            path=mod.path, line=node.lineno, node=node,
            base_names=tuple(
                name for name in (dotted_name(b) for b in node.bases)
                if name is not None
            ),
        )
        self.classes[qual] = info
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            method_qual = f"{qual}.{stmt.name}"
            info.methods[stmt.name] = method_qual
            self.functions[method_qual] = FunctionInfo(
                qualname=method_qual, name=stmt.name, module=mod.module,
                path=mod.path, line=stmt.lineno, node=stmt, cls=qual,
            )
            self.method_index.setdefault(stmt.name, set()).add(method_qual)
            self._collect_self_writes(info, method_qual, stmt)
            if stmt.name == "__init__":
                self._infer_attr_types(mod, info, stmt)

    def _collect_self_writes(
        self, info: ClassInfo, method_qual: str, fn: ast.AST
    ) -> None:
        """Record every ``self.attr`` mutation inside one method."""
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                kind = (
                    "augassign" if isinstance(node, ast.AugAssign)
                    else "assign"
                )
                for target in targets:
                    root = _write_root(target)
                    if root is None or root[0] != "self":
                        continue
                    self._record_write(
                        info, root[1], node,
                        root[2] if root[2] == "subscript" else kind,
                        method_qual,
                    )
            elif isinstance(node, ast.Call):
                root = _mutator_root(node)
                if root is not None and root[0] == "self" and root[1]:
                    self._record_write(
                        info, root[1], node, "mutator", method_qual
                    )

    def _record_write(
        self,
        info: ClassInfo,
        attr: str,
        node: ast.AST,
        kind: str,
        method: Optional[str],
    ) -> None:
        info.attr_writes.setdefault(attr, []).append(AttrWrite(
            attr=attr, path=info.path,
            line=getattr(node, "lineno", info.line),
            col=getattr(node, "col_offset", 0),
            method=method, kind=kind,
        ))

    def _infer_attr_types(
        self, mod: ModuleInfo, info: ClassInfo, init: ast.AST
    ) -> None:
        """``self.x = ClassName(...)`` / annotated-param field types."""
        params: Dict[str, str] = {}
        args = init.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotated = _annotation_name(arg.annotation)
            if annotated is not None:
                resolved = self._resolve_class_name(mod, annotated)
                if resolved is not None:
                    params[arg.arg] = resolved
        for node in ast.walk(init):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            inferred: Optional[str] = None
            if isinstance(value, ast.Call):
                callee = dotted_name(value.func)
                if callee is not None:
                    inferred = self._resolve_class_name(mod, callee)
            elif isinstance(value, ast.Name) and value.id in params:
                inferred = params[value.id]
            if inferred is None and isinstance(node, ast.AnnAssign):
                annotated = _annotation_name(node.annotation)
                if annotated is not None:
                    inferred = self._resolve_class_name(mod, annotated)
            if inferred is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.attr_types.setdefault(target.attr, inferred)

    # -- pass 2: bodies ------------------------------------------------

    def _collect_bodies(self, ctx: LintContext) -> None:
        mod = self.modules[ctx.module]
        seen: Set[int] = set()
        for qual, fn in sorted(self.functions.items()):
            if fn.module != ctx.module:
                continue
            fn.var_types = self._infer_var_types(mod, fn)
            edges = self.call_graph.setdefault(qual, set())
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                seen.add(id(node))
                edges.update(self._resolve_call(mod, fn, node))
                self._scan_special_call(mod, fn, node)
            self._collect_external_writes(fn)
        # Module-level calls (outside any def) still feed the RNG and
        # fleet-entry summaries.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and id(node) not in seen:
                self._scan_special_call(mod, None, node)

    def _infer_var_types(
        self, mod: ModuleInfo, fn: FunctionInfo
    ) -> Dict[str, str]:
        types: Dict[str, str] = {}
        node = fn.node
        args = getattr(node, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                annotated = _annotation_name(arg.annotation)
                if annotated is not None:
                    resolved = self._resolve_class_name(mod, annotated)
                    if resolved is not None:
                        types[arg.arg] = resolved
        for inner in ast.walk(node):
            if not isinstance(inner, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                inner.targets if isinstance(inner, ast.Assign)
                else [inner.target]
            )
            inferred: Optional[str] = None
            if isinstance(inner.value, ast.Call):
                callee = dotted_name(inner.value.func)
                if callee is not None:
                    inferred = self._resolve_class_name(mod, callee)
            if inferred is None and isinstance(inner, ast.AnnAssign):
                annotated = _annotation_name(inner.annotation)
                if annotated is not None:
                    inferred = self._resolve_class_name(mod, annotated)
            if inferred is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    types.setdefault(target.id, inferred)
        return types

    def _collect_external_writes(self, fn: FunctionInfo) -> None:
        """``obj.attr = ...`` where ``obj``'s class is known."""
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                root = _write_root(target)
                if root is None or root[0] == "self":
                    continue
                cls_qual = fn.var_types.get(root[0])
                if cls_qual is None or cls_qual not in self.classes:
                    continue
                self._record_write(
                    self.classes[cls_qual], root[1], node, "external",
                    fn.qualname,
                )

    def _scan_special_call(
        self, mod: ModuleInfo, fn: Optional[FunctionInfo], node: ast.Call
    ) -> None:
        target = dotted_name(node.func)
        if target is None:
            return
        tail = target.rsplit(".", 1)[-1]
        if tail == "rng_for":
            self._record_rng_for(mod, node)
        elif tail == "Process" and mod.module.startswith("repro.fleet"):
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    resolved = self._resolve_function_name(
                        mod, kw.value.id
                    )
                    if resolved is not None:
                        self.fleet_entries.add(resolved)
        elif tail == "WorkUnit":
            for kw in node.keywords:
                if kw.arg == "fn" and isinstance(kw.value, ast.Name):
                    resolved = self._resolve_function_name(
                        mod, kw.value.id
                    )
                    if resolved is not None:
                        self.fleet_entries.add(resolved)

    def _record_rng_for(self, mod: ModuleInfo, node: ast.Call) -> None:
        name_node: Optional[ast.AST] = None
        salt_node: Optional[ast.AST] = None
        if node.args:
            name_node = node.args[0]
        if len(node.args) > 1:
            salt_node = node.args[1]
        for kw in node.keywords:
            if kw.arg == "name":
                name_node = kw.value
            elif kw.arg == "salt":
                salt_node = kw.value
        self.rng_for_calls.append(RngForCall(
            path=mod.path, line=node.lineno, col=node.col_offset,
            module=mod.module,
            name_const=_const_str(name_node) if name_node else None,
            salt_const=(
                "" if salt_node is None else _const_str(salt_node)
            ),
        ))

    # -- name resolution -----------------------------------------------

    def _resolve_class_name(
        self, mod: ModuleInfo, name: str
    ) -> Optional[str]:
        """Dotted/local class name -> class qualname, if indexed."""
        head = name.split(".", 1)[0]
        if name in mod.classes:
            return mod.classes[name]
        if head in mod.aliases:
            resolved = mod.aliases[head] + name[len(head):]
            if resolved in self.classes:
                return resolved
        if name in self.classes:
            return name
        return None

    def _resolve_function_name(
        self, mod: ModuleInfo, name: str
    ) -> Optional[str]:
        if name in mod.functions:
            return mod.functions[name]
        if name in mod.aliases and mod.aliases[name] in self.functions:
            return mod.aliases[name]
        return None

    def _lookup_method(
        self, cls: ClassInfo, method: str, _depth: int = 0
    ) -> Optional[str]:
        if method in cls.methods:
            return cls.methods[method]
        if _depth >= 8:
            return None
        mod = self.modules.get(cls.module)
        for base_name in cls.base_names:
            base_qual = (
                self._resolve_class_name(mod, base_name)
                if mod is not None else None
            )
            if base_qual is None:
                continue
            found = self._lookup_method(
                self.classes[base_qual], method, _depth + 1
            )
            if found is not None:
                return found
        return None

    def _resolve_call(
        self, mod: ModuleInfo, fn: FunctionInfo, call: ast.Call
    ) -> Set[str]:
        name = dotted_name(call.func)
        if name is None:
            return set()
        parts = name.split(".")
        # Tier 1: bare local/imported names and constructors.
        if len(parts) == 1:
            resolved = self._resolve_function_name(mod, parts[0])
            if resolved is not None:
                return {resolved}
            cls_qual = self._resolve_class_name(mod, parts[0])
            if cls_qual is not None:
                init = self.classes[cls_qual].methods.get("__init__")
                return {init} if init else set()
            return set()
        head, rest = parts[0], parts[1:]
        # Tier 2: self.method() / self.field.method().
        if head == "self" and fn.cls is not None:
            cls = self.classes[fn.cls]
            if len(rest) == 1:
                found = self._lookup_method(cls, rest[0])
                if found is not None:
                    return {found}
            elif len(rest) == 2:
                field_type = cls.attr_types.get(rest[0])
                if field_type is not None:
                    found = self._lookup_method(
                        self.classes[field_type], rest[1]
                    )
                    if found is not None:
                        return {found}
        # Tier 3: typed local receiver.
        if len(rest) == 1 and head in fn.var_types:
            receiver = self.classes.get(fn.var_types[head])
            if receiver is not None:
                found = self._lookup_method(receiver, rest[0])
                if found is not None:
                    return {found}
        # Tier 4: dotted module/class paths through import aliases.
        if head in mod.aliases or head in mod.classes:
            base = mod.aliases.get(head) or mod.classes[head]
            full = ".".join([base, *rest])
            if full in self.functions:
                return {full}
            cls_qual = self._resolve_class_name(mod, ".".join(parts[:-1]))
            if cls_qual is not None:
                found = self._lookup_method(
                    self.classes[cls_qual], parts[-1]
                )
                if found is not None:
                    return {found}
        if name in self.functions:
            return {name}
        # Tier 5: class-hierarchy fallback by method name.
        return set(self.method_index.get(parts[-1], ()))

    # -- queries -------------------------------------------------------

    def reachable(
        self, roots: Iterable[str]
    ) -> Dict[str, Optional[str]]:
        """BFS closure of the call graph: qualname -> parent (chains)."""
        parents: Dict[str, Optional[str]] = {}
        frontier: List[str] = []
        for root in sorted(set(roots)):
            if root in self.functions and root not in parents:
                parents[root] = None
                frontier.append(root)
        while frontier:
            current = frontier.pop(0)
            for callee in sorted(self.call_graph.get(current, ())):
                if callee not in parents and callee in self.functions:
                    parents[callee] = current
                    frontier.append(callee)
        return parents

    def chain(
        self, parents: Dict[str, Optional[str]], qualname: str
    ) -> List[str]:
        """Root-to-``qualname`` call chain out of a ``reachable`` map."""
        out = [qualname]
        seen = {qualname}
        while True:
            parent = parents.get(out[-1])
            if parent is None or parent in seen:
                break
            out.append(parent)
            seen.add(parent)
        return list(reversed(out))

    def decision_roots(self) -> List[str]:
        """Hot-path entry points for the DET105 reachability pass."""
        roots: Set[str] = set()
        for qual, fn in self.functions.items():
            if fn.cls is None:
                if fn.name == "run_policy":
                    roots.add(qual)
                continue
            owner = self.classes[fn.cls].name
            if fn.name == "decide":
                roots.add(qual)
            elif fn.name == "search" and owner.endswith("Search"):
                roots.add(qual)
            elif fn.name == "reconstruct" and owner.endswith(
                "Reconstructor"
            ):
                roots.add(qual)
        return sorted(roots)

    def fleet_entry_points(self) -> List[str]:
        """Worker entry points for the FLT502 reachability pass."""
        roots = set(self.fleet_entries)
        for qual, cls in self.classes.items():
            if cls.name == "WorkUnit" and cls.module.startswith(
                "repro.fleet"
            ):
                run = cls.methods.get("run")
                if run is not None:
                    roots.add(run)
        return sorted(roots)

    def module_in(self, module: str, *packages: str) -> bool:
        """True when ``module`` lives under any of ``packages``."""
        return any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in packages
        )

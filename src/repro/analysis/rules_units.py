"""Unit and invariant discipline rules.

The machine invariants the paper assumes — LLC way budget, power cap,
valid {FE,BE,LS} widths — are all physical quantities carried in
floats with unit-suffixed names (``*_w``, ``*_ms``, ``*_ways``).
These rules catch the two classic ways such code rots: exact float
comparison on computed values, and quantities crossing a unit boundary
(watts vs milliwatts, seconds vs milliseconds) without conversion.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Recognised unit suffixes mapped to their physical dimension.  Two
#: names whose suffixes differ — even within one dimension — must not
#: be compared, added, or assigned without explicit conversion.
_UNIT_DIMENSIONS = {
    "w": "power", "mw": "power", "kw": "power",
    "s": "time", "ms": "time", "us": "time", "ns": "time",
    "hz": "frequency", "mhz": "frequency", "ghz": "frequency",
    "ways": "cache",
    "qps": "rate",
}


def _unit_of(node: ast.AST) -> Optional[Tuple[str, str]]:
    """(name, unit-suffix) if the node is a unit-suffixed name."""
    name = dotted_name(node)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if "_" not in tail:
        # Bare names like ``w`` or ``s`` are loop variables far more
        # often than quantities; only the ``quantity_unit`` naming
        # convention is load-bearing enough to lint.
        return None
    suffix = tail.rsplit("_", 1)[-1].lower()
    if suffix in _UNIT_DIMENSIONS:
        return name, suffix
    return None


@register
class FloatEqualityRule(Rule):
    id = "UNIT301"
    scope = "file"
    title = "exact == / != against a float literal"
    rationale = (
        "Computed floats (powers, latencies, way shares) accumulate "
        "rounding error; exact equality silently becomes always-false "
        "(or worse, platform-dependent).  Compare with an explicit "
        "near-zero tolerance or math.isclose."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for operand in (left, right):
                    if isinstance(operand, ast.Constant) and isinstance(
                        operand.value, float
                    ):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield ctx.violation(
                            self, node,
                            f"exact {symbol} against float literal "
                            f"{operand.value!r}; use an explicit tolerance "
                            "(or suppress if the value is an exact "
                            "sentinel, never computed)",
                        )
                        break


_MUTABLE_CALLS = ("list", "dict", "set", "collections.defaultdict",
                  "defaultdict", "bytearray")


@register
class MutableDefaultRule(Rule):
    id = "UNIT302"
    scope = "file"
    title = "mutable default argument"
    rationale = (
        "A mutable default is shared across every call: state leaks "
        "between runs that must be independent, which breaks replay "
        "and makes results order-dependent."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if isinstance(default, ast.Call):
                    bad = dotted_name(default.func) in _MUTABLE_CALLS
                if bad:
                    yield ctx.violation(
                        self, default,
                        f"mutable default argument in {node.name}(); "
                        "default to None (or a tuple) and construct "
                        "inside the function",
                    )


@register
class UnitSuffixMismatchRule(Rule):
    id = "UNIT303"
    scope = "file"
    title = "unit-suffixed quantities mixed across different units"
    rationale = (
        "power_w = budget_mw or cap_w < latency_ms compiles and runs; "
        "only the physics is wrong.  Any comparison, addition, "
        "subtraction, or direct assignment between names with "
        "different unit suffixes needs an explicit conversion."
    )

    def _mismatch(
        self, a: ast.AST, b: ast.AST
    ) -> Optional[Tuple[str, str, str, str]]:
        ua, ub = _unit_of(a), _unit_of(b)
        if ua is None or ub is None or ua[1] == ub[1]:
            return None
        return ua[0], ua[1], ub[0], ub[1]

    def _describe(self, hit: Tuple[str, str, str, str], verb: str) -> str:
        name_a, unit_a, name_b, unit_b = hit
        dim_a = _UNIT_DIMENSIONS[unit_a]
        dim_b = _UNIT_DIMENSIONS[unit_b]
        if dim_a == dim_b:
            detail = f"both {dim_a}, but units differ — convert explicitly"
        else:
            detail = f"{dim_a} vs {dim_b} — these are different dimensions"
        return (
            f"{name_a} [{unit_a}] {verb} {name_b} [{unit_b}]: {detail}"
        )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for left, right in zip(operands, operands[1:]):
                    hit = self._mismatch(left, right)
                    if hit is not None:
                        yield ctx.violation(
                            self, node, self._describe(hit, "compared with")
                        )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                hit = self._mismatch(node.left, node.right)
                if hit is not None:
                    verb = "+" if isinstance(node.op, ast.Add) else "-"
                    yield ctx.violation(
                        self, node, self._describe(hit, verb)
                    )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    hit = self._mismatch(target, node.value)
                    if hit is not None:
                        yield ctx.violation(
                            self, node, self._describe(hit, "assigned from")
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                hit = self._mismatch(node.target, node.value)
                if hit is not None:
                    yield ctx.violation(
                        self, node, self._describe(hit, "assigned from")
                    )

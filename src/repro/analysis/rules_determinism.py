"""Determinism rules: every run must be exactly replayable.

The reproduction's fault-injection and replay machinery
(docs/robustness.md) assumes that re-running with the same seed
reproduces every draw bit-for-bit.  These rules ban the constructs
that silently break that property: unseeded generators, the legacy
process-global RNGs, wall-clock reads inside the simulator/controller,
and iteration over unordered sets (whose order feeds RNG draws and
assignment order).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:
    from repro.analysis.program import ProgramContext

from repro.analysis.engine import (
    LintContext,
    ProgramRule,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: Legacy ``numpy.random`` module-level functions that draw from (or
#: reseed) the process-global generator.  ``default_rng`` /
#: ``Generator`` / ``SeedSequence`` / bit generators are the modern,
#: explicitly-seeded API and stay allowed.
_NP_LEGACY = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "exponential", "poisson", "beta",
    "gamma", "binomial", "lognormal", "get_state", "set_state",
})

#: ``random`` (stdlib) module-level draw/seed functions.
_STDLIB_LEGACY = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "gauss", "normalvariate",
    "expovariate", "betavariate", "gammavariate", "lognormvariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "getrandbits", "getstate", "setstate",
})

#: Wall-clock reads, matched as dotted-suffixes of the call target.
_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Packages where wall-clock reads are banned outright.  Telemetry is
#: deliberately absent: its tracer timestamps spans, which is exactly
#: what wall clocks are for, and no simulation state depends on them.
_CLOCK_FREE_PACKAGES = ("repro.sim", "repro.core", "repro.faults")


def _call_target(node: ast.Call) -> Optional[str]:
    return dotted_name(node.func)


@register
class UnseededGeneratorRule(Rule):
    id = "DET101"
    scope = "file"
    title = "np.random.default_rng() called without a seed"
    rationale = (
        "An unseeded generator takes OS entropy, so two runs with the "
        "same --seed diverge and exact replay of faulted runs breaks."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is None or not (
                target == "default_rng" or target.endswith(".default_rng")
            ):
                continue
            if not node.args and not node.keywords:
                yield ctx.violation(
                    self, node,
                    "unseeded default_rng(); derive the stream with "
                    "repro.rng.rng_for or pass an explicit seed",
                )


@register
class LegacyGlobalRngRule(Rule):
    id = "DET102"
    scope = "file"
    title = "process-global RNG (random.* / legacy np.random.*) used"
    rationale = (
        "The module-level generators are shared mutable process state: "
        "any import that draws from them shifts every later draw, so "
        "replay depends on import order and unrelated code."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                target = _call_target(node)
                if target is None:
                    continue
                if target.startswith("random.") and \
                        target.split(".", 1)[1] in _STDLIB_LEGACY:
                    yield ctx.violation(
                        self, node,
                        f"{target}() draws from the process-global stdlib "
                        "generator; use an explicit np.random.Generator",
                    )
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if target.startswith(prefix) and \
                            target[len(prefix):] in _NP_LEGACY:
                        yield ctx.violation(
                            self, node,
                            f"{target}() uses the legacy global numpy RNG; "
                            "use np.random.default_rng(seed) / rng_for",
                        )
                        break
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "random":
                    names = {alias.name for alias in node.names}
                    bad = sorted(names & _STDLIB_LEGACY)
                    if bad:
                        yield ctx.violation(
                            self, node,
                            "importing process-global draw functions from "
                            f"the random module ({', '.join(bad)})",
                        )
                elif node.module == "numpy.random":
                    names = {alias.name for alias in node.names}
                    for name in sorted(names & _NP_LEGACY):
                        yield ctx.violation(
                            self, node,
                            f"importing legacy global numpy.random.{name}",
                        )


@register
class WallClockRule(Rule):
    id = "DET103"
    scope = "file"
    title = "wall-clock read inside repro.sim / repro.core / repro.faults"
    rationale = (
        "Simulated time is the only clock the simulator, controller "
        "and fault injector may observe; a wall-clock read makes "
        "behaviour depend on host speed and breaks replay."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in(*_CLOCK_FREE_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is None:
                continue
            if any(
                target == clock or target.endswith("." + clock)
                for clock in _WALL_CLOCK
            ):
                yield ctx.violation(
                    self, node,
                    f"wall-clock call {target}() in {ctx.module}; use "
                    "simulated time (slice indices / quantum counts)",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = dotted_name(node.func)
        return target in ("set", "frozenset")
    return False


@register
class SetIterationRule(Rule):
    id = "DET104"
    scope = "file"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order varies across Python versions and hash "
        "seeds; when it feeds RNG draws or assignment order, two "
        "hosts replay the same seed differently.  Iterate over "
        "sorted(...) instead."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        message = (
            "iterating over an unordered set; wrap it in sorted() so "
            "order (and anything drawn per element) is deterministic"
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield ctx.violation(self, node.iter, message)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield ctx.violation(self, gen.iter, message)
            elif isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target in ("list", "tuple", "enumerate") and \
                        len(node.args) >= 1 and _is_set_expr(node.args[0]):
                    yield ctx.violation(self, node.args[0], message)


#: Packages allowed to read clocks even when called from the hot path
#: — the tracer timestamps spans by design, and no simulation state
#: depends on those timestamps.
_CLOCK_SINK_PACKAGES = ("repro.telemetry",)


@register
class TransitiveHotPathClockRule(ProgramRule):
    id = "DET105"
    title = "wall clock / global RNG transitively reachable from the decision hot path"
    rationale = (
        "DET102/DET103 catch direct calls, but the decision loop "
        "(run_policy -> decide -> SGD/DDS/GA) also breaks replay when "
        "a helper three calls away reads a clock or the process-global "
        "RNG; the call graph makes the whole transitive frontier "
        "checkable."
    )

    def check_program(self, program: "ProgramContext") -> Iterator[Violation]:
        parents = program.reachable(program.decision_roots())
        for qual in sorted(parents):
            fn = program.functions[qual]
            if program.module_in(fn.module, *_CLOCK_SINK_PACKAGES):
                continue
            chain = " -> ".join(
                q.rsplit(".", 2)[-1] if q.count(".") < 2
                else ".".join(q.rsplit(".", 2)[-2:])
                for q in program.chain(parents, qual)
            )
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                target = _call_target(node)
                if target is None:
                    continue
                problem = None
                if any(
                    target == clock or target.endswith("." + clock)
                    for clock in _WALL_CLOCK
                ):
                    problem = "reads the wall clock"
                elif target.startswith("random.") and \
                        target.split(".", 1)[1] in _STDLIB_LEGACY:
                    problem = "draws from the process-global stdlib RNG"
                else:
                    for prefix in ("np.random.", "numpy.random."):
                        if target.startswith(prefix) and \
                                target[len(prefix):] in _NP_LEGACY:
                            problem = (
                                "draws from the legacy global numpy RNG"
                            )
                            break
                if problem is None:
                    continue
                yield Violation(
                    path=fn.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"{target}() {problem} and is reachable from "
                        f"the decision hot path via {chain}; use "
                        "simulated time / an explicit seeded stream"
                    ),
                )

"""Fleet fork-safety rules.

``repro.fleet`` runs work units in forked worker processes and promises
``--jobs N`` output byte-identical to serial.  That promise only holds
if fleet code is *pure* with respect to process-global mutable state:
no environment mutation (invisible to the parent, divergent across
workers), no module-level RNG objects (forked copies share then split
their state), no legacy ``np.random.*`` global-stream draws.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Set

if TYPE_CHECKING:
    from repro.analysis.program import (
        FunctionInfo,
        ModuleInfo,
        ProgramContext,
    )

from repro.analysis.engine import (
    LintContext,
    ProgramRule,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: ``os.environ`` methods that mutate the process environment.
_ENVIRON_MUTATORS = frozenset({
    "update", "setdefault", "pop", "clear", "popitem",
})

#: Generator constructors that must not run at module scope.
_RNG_CONSTRUCTORS = frozenset({
    "rng_for", "default_rng", "Generator", "RandomState", "SeedSequence",
    "Random",
})


def _is_environ(node: ast.AST) -> bool:
    return dotted_name(node) in ("os.environ", "environ")


def _function_body_nodes(tree: ast.Module) -> Set[int]:
    """ids of every AST node nested inside a function or lambda body."""
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            for inner in ast.walk(node):
                if inner is not node:
                    inside.add(id(inner))
    return inside


@register
class FleetProcessStateRule(Rule):
    id = "FLT501"
    scope = "file"
    title = "fleet code touches process-global mutable state"
    rationale = (
        "Fleet work units execute in forked worker processes, and the "
        "--jobs N == --jobs 1 guarantee rests on units being pure "
        "functions of their arguments: os.environ writes diverge "
        "silently across workers, module-level RNGs are duplicated by "
        "fork and then drift, and np.random.* draws from the hidden "
        "global stream no worker shares. Derive every stream from unit "
        "arguments via repro.rng.rng_for instead."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in("repro.fleet"):
            return
        inside_function = _function_body_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            # -- os.environ mutation --------------------------------
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                hit = False
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _is_environ(target.value)
                    ):
                        hit = True
                if hit:
                    yield ctx.violation(
                        self, node,
                        "mutating os.environ from fleet code changes "
                        "per-process state workers do not share; pass "
                        "configuration through WorkUnit kwargs",
                    )
                    continue
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            # -- os.environ.update() / putenv -----------------------
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENVIRON_MUTATORS
                and _is_environ(node.func.value)
            ):
                yield ctx.violation(
                    self, node,
                    f"os.environ.{node.func.attr}() mutates per-process "
                    "state workers do not share; pass configuration "
                    "through WorkUnit kwargs",
                )
                continue
            if target in ("os.putenv", "os.unsetenv", "putenv", "unsetenv"):
                yield ctx.violation(
                    self, node,
                    f"{target}() mutates per-process state workers do "
                    "not share; pass configuration through WorkUnit "
                    "kwargs",
                )
                continue
            # -- np.random.* global-stream calls --------------------
            if target is not None and (
                target.startswith("np.random.")
                or target.startswith("numpy.random.")
            ):
                yield ctx.violation(
                    self, node,
                    f"{target}() touches numpy's process-global random "
                    "stream; derive a per-unit stream with "
                    "repro.rng.rng_for",
                )
                continue
            # -- module-scope RNG construction ----------------------
            if (
                target is not None
                and target.rsplit(".", 1)[-1] in _RNG_CONSTRUCTORS
                and id(node) not in inside_function
            ):
                yield ctx.violation(
                    self, node,
                    f"module-level {target}() creates RNG state that "
                    "fork duplicates into every worker; construct "
                    "generators inside the unit from its arguments",
                )


@register
class FleetSharedStateReachabilityRule(ProgramRule):
    id = "FLT502"
    title = "module-global mutable state reachable from a fleet worker entry point"
    rationale = (
        "FLT501 polices repro.fleet's own files, but worker processes "
        "execute arbitrary unit functions that call into the rest of "
        "the tree; any module-level dict/list/RNG mutated along that "
        "transitive path is parent-process state the fork duplicated, "
        "so workers drift from each other and from serial execution. "
        "The call graph makes the whole reachable frontier checkable."
    )

    def check_program(self, program: "ProgramContext") -> Iterator[Violation]:
        parents = program.reachable(program.fleet_entry_points())
        for qual in sorted(parents):
            fn = program.functions[qual]
            mod = program.modules.get(fn.module)
            if mod is None:
                continue
            chain = " -> ".join(
                q.rsplit(".", 1)[-1] for q in program.chain(parents, qual)
            )
            yield from self._check_function(fn, mod, chain)

    @staticmethod
    def _local_names(fn_node: ast.AST) -> Set[str]:
        """Parameters and locally-bound names (they shadow globals)."""
        out: Set[str] = set()
        args = getattr(fn_node, "args", None)
        if args is not None:
            for arg in [
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                out.add(arg.arg)
        for node in ast.walk(fn_node):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                if isinstance(target, ast.Name):
                    out.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            out.add(elt.id)
            elif isinstance(node, ast.withitem):
                if isinstance(node.optional_vars, ast.Name):
                    out.add(node.optional_vars.id)
        return out

    def _check_function(
        self, fn: "FunctionInfo", mod: "ModuleInfo", chain: str
    ) -> Iterator[Violation]:
        declared_global: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        shadowed = self._local_names(fn.node) - declared_global
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_store(
                        fn, mod, chain, node, target, declared_global,
                        shadowed,
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_mutator_call(
                    fn, mod, chain, node, shadowed
                )

    def _check_store(
        self,
        fn: "FunctionInfo",
        mod: "ModuleInfo",
        chain: str,
        stmt: ast.AST,
        target: ast.AST,
        declared_global: Set[str],
        shadowed: Set[str],
    ) -> Iterator[Violation]:
        if isinstance(target, ast.Name):
            if target.id in declared_global:
                yield self._violation(
                    fn, stmt,
                    f"rebinds module global {target.id!r}",
                    chain,
                )
            return
        # Attribute writes on instances are the unit's own state; the
        # shared-state hazards are NAME[...] = ... on a module-level
        # name and os.environ[...] = ... (outside repro.fleet, where
        # FLT501 already fires on the latter).
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if _is_environ(base):
            if not fn.module.startswith("repro.fleet"):
                yield self._violation(
                    fn, stmt, "mutates os.environ", chain
                )
            return
        if not isinstance(base, ast.Name):
            return
        if base.id in mod.globals and base.id not in shadowed:
            yield self._violation(
                fn, stmt,
                f"writes into module-level container {base.id!r}",
                chain,
            )

    def _check_mutator_call(
        self, fn: "FunctionInfo", mod: "ModuleInfo", chain: str,
        node: ast.Call, shadowed: Set[str],
    ) -> Iterator[Violation]:
        from repro.analysis.program import MUTATOR_METHODS

        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in MUTATOR_METHODS:
            return
        if not isinstance(func.value, ast.Name):
            return
        receiver = func.value.id
        if receiver in mod.globals and receiver not in shadowed:
            yield self._violation(
                fn, node,
                f"calls {receiver}.{func.attr}() on a module-level "
                "container",
                chain,
            )

    def _violation(
        self, fn: "FunctionInfo", node: ast.AST, what: str, chain: str
    ) -> Violation:
        return Violation(
            path=fn.path,
            line=getattr(node, "lineno", fn.line),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=(
                f"{fn.name}() {what}, and is reachable from a fleet "
                f"worker entry point via {chain}; workers fork this "
                "state and silently diverge — derive it from unit "
                "arguments instead"
            ),
        )

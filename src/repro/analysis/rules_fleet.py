"""Fleet fork-safety rules.

``repro.fleet`` runs work units in forked worker processes and promises
``--jobs N`` output byte-identical to serial.  That promise only holds
if fleet code is *pure* with respect to process-global mutable state:
no environment mutation (invisible to the parent, divergent across
workers), no module-level RNG objects (forked copies share then split
their state), no legacy ``np.random.*`` global-stream draws.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.engine import (
    LintContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

#: ``os.environ`` methods that mutate the process environment.
_ENVIRON_MUTATORS = frozenset({
    "update", "setdefault", "pop", "clear", "popitem",
})

#: Generator constructors that must not run at module scope.
_RNG_CONSTRUCTORS = frozenset({
    "rng_for", "default_rng", "Generator", "RandomState", "SeedSequence",
    "Random",
})


def _is_environ(node: ast.AST) -> bool:
    return dotted_name(node) in ("os.environ", "environ")


def _function_body_nodes(tree: ast.Module) -> Set[int]:
    """ids of every AST node nested inside a function or lambda body."""
    inside: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            for inner in ast.walk(node):
                if inner is not node:
                    inside.add(id(inner))
    return inside


@register
class FleetProcessStateRule(Rule):
    id = "FLT501"
    title = "fleet code touches process-global mutable state"
    rationale = (
        "Fleet work units execute in forked worker processes, and the "
        "--jobs N == --jobs 1 guarantee rests on units being pure "
        "functions of their arguments: os.environ writes diverge "
        "silently across workers, module-level RNGs are duplicated by "
        "fork and then drift, and np.random.* draws from the hidden "
        "global stream no worker shares. Derive every stream from unit "
        "arguments via repro.rng.rng_for instead."
    )

    def check(self, ctx: LintContext) -> Iterator[Violation]:
        if not ctx.module_in("repro.fleet"):
            return
        inside_function = _function_body_nodes(ctx.tree)
        for node in ast.walk(ctx.tree):
            # -- os.environ mutation --------------------------------
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                hit = False
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _is_environ(target.value)
                    ):
                        hit = True
                if hit:
                    yield ctx.violation(
                        self, node,
                        "mutating os.environ from fleet code changes "
                        "per-process state workers do not share; pass "
                        "configuration through WorkUnit kwargs",
                    )
                    continue
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func)
            # -- os.environ.update() / putenv -----------------------
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _ENVIRON_MUTATORS
                and _is_environ(node.func.value)
            ):
                yield ctx.violation(
                    self, node,
                    f"os.environ.{node.func.attr}() mutates per-process "
                    "state workers do not share; pass configuration "
                    "through WorkUnit kwargs",
                )
                continue
            if target in ("os.putenv", "os.unsetenv", "putenv", "unsetenv"):
                yield ctx.violation(
                    self, node,
                    f"{target}() mutates per-process state workers do "
                    "not share; pass configuration through WorkUnit "
                    "kwargs",
                )
                continue
            # -- np.random.* global-stream calls --------------------
            if target is not None and (
                target.startswith("np.random.")
                or target.startswith("numpy.random.")
            ):
                yield ctx.violation(
                    self, node,
                    f"{target}() touches numpy's process-global random "
                    "stream; derive a per-unit stream with "
                    "repro.rng.rng_for",
                )
                continue
            # -- module-scope RNG construction ----------------------
            if (
                target is not None
                and target.rsplit(".", 1)[-1] in _RNG_CONSTRUCTORS
                and id(node) not in inside_function
            ):
                yield ctx.violation(
                    self, node,
                    f"module-level {target}() creates RNG state that "
                    "fork duplicates into every worker; construct "
                    "generators inside the unit from its arguments",
                )

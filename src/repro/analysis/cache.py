"""Content-hash cache for lint results.

Keyed on (a) a per-file sha256 of the source text and (b) a
*rules fingerprint* — a sha256 over every source file of the
``repro.analysis`` package itself — so editing either a linted file or
any rule logic invalidates exactly the affected entries.  The
whole-program pass is cached under one combined key derived from every
file digest in the run, because any file edit can change the call
graph.

The cache stores *post-suppression* violations: ``# repro: noqa``
comments live in the hashed source, so a cached replay is
byte-identical to a cold run (asserted in
tests/analysis/test_cache.py).  A corrupt, stale-schema, or
stale-fingerprint cache file is discarded wholesale, never trusted.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Violation

__all__ = ["LintCache", "DEFAULT_CACHE_NAME", "rules_fingerprint"]

#: Default cache filename, created in the working directory (it is
#: listed in .gitignore).
DEFAULT_CACHE_NAME = ".repro-lint-cache.json"

_SCHEMA_VERSION = 1

_fingerprint_memo: Optional[str] = None


def rules_fingerprint() -> str:
    """sha256 over the analysis package's own source files.

    Any edit to the engine, a rule module, or this cache module
    changes the fingerprint and therefore drops every cached entry.
    """
    global _fingerprint_memo
    if _fingerprint_memo is not None:
        return _fingerprint_memo
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.read_bytes())
        digest.update(b"\x00")
    _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


def _violations_to_json(violations: Sequence[Violation]) -> List[Dict[str, object]]:
    return [v.to_dict() for v in violations]


def _violations_from_json(payload: object) -> Optional[List[Violation]]:
    if not isinstance(payload, list):
        return None
    out: List[Violation] = []
    for item in payload:
        if not isinstance(item, dict):
            return None
        try:
            out.append(Violation(
                path=str(item["path"]),
                line=int(item["line"]),
                col=int(item["col"]),
                rule=str(item["rule"]),
                message=str(item["message"]),
            ))
        except (KeyError, TypeError, ValueError):
            return None
    return out


class LintCache:
    """Per-file + whole-program lint result cache backed by one JSON file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self.fingerprint = rules_fingerprint()
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._files: Dict[str, Dict[str, object]] = {}
        self._program: Dict[str, object] = {}
        self._load()

    # -- persistence ---------------------------------------------------

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        if raw.get("version") != _SCHEMA_VERSION:
            return
        if raw.get("fingerprint") != self.fingerprint:
            return
        files = raw.get("files")
        if isinstance(files, dict):
            for key, entry in files.items():
                if (
                    isinstance(entry, dict)
                    and isinstance(entry.get("digest"), str)
                    and _violations_from_json(entry.get("violations"))
                    is not None
                ):
                    self._files[key] = entry
        program = raw.get("program")
        if (
            isinstance(program, dict)
            and isinstance(program.get("key"), str)
            and _violations_from_json(program.get("violations")) is not None
        ):
            self._program = program

    def save(self) -> None:
        """Write the cache back if anything changed.  Best-effort: an
        unwritable cache path degrades to uncached behaviour."""
        if not self._dirty:
            return
        payload = {
            "version": _SCHEMA_VERSION,
            "fingerprint": self.fingerprint,
            "files": self._files,
            "program": self._program,
        }
        try:
            self.path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            return
        self._dirty = False

    # -- keys ----------------------------------------------------------

    @staticmethod
    def file_digest(source: str) -> str:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()

    def program_key(self, digests: Sequence[Tuple[str, str]]) -> str:
        """One key over the whole run's file set (order-independent)."""
        digest = hashlib.sha256()
        for path, file_digest in sorted(digests):
            digest.update(path.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(file_digest.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- lookups -------------------------------------------------------

    def get_file(self, path: str, digest: str) -> Optional[List[Violation]]:
        entry = self._files.get(path)
        if entry is None or entry.get("digest") != digest:
            self.misses += 1
            return None
        violations = _violations_from_json(entry.get("violations"))
        if violations is None:
            self.misses += 1
            return None
        self.hits += 1
        return violations

    def set_file(
        self, path: str, digest: str, violations: Sequence[Violation]
    ) -> None:
        self._files[path] = {
            "digest": digest,
            "violations": _violations_to_json(violations),
        }
        self._dirty = True

    def get_program(self, key: str) -> Optional[List[Violation]]:
        if self._program.get("key") != key:
            self.misses += 1
            return None
        violations = _violations_from_json(self._program.get("violations"))
        if violations is None:
            self.misses += 1
            return None
        self.hits += 1
        return violations

    def set_program(self, key: str, violations: Sequence[Violation]) -> None:
        self._program = {
            "key": key,
            "violations": _violations_to_json(violations),
        }
        self._dirty = True

"""Extension study: job churn — previously-unseen applications arriving.

CuttleSys's collaborative filter is built for exactly this: "the rows
of matrix R include some known applications, along the
previously-unseen applications that arrive to the system" (§V).  This
study replaces a random batch job every few quanta with a *synthetic*
application no training set has seen, and measures how much the churn
costs:

* CuttleSys must re-profile each newcomer (two 1 ms samples) and
  reconstruct it from the known population before it can place it well;
* the oracle re-reads ground truth every quantum, so the gap between
  the two isolates the cost of learning newcomers online;
* QoS must hold throughout — churn only touches batch slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.workloads.batch import synthetic_population
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class ChurnOutcome:
    """One (policy, churn setting) cell."""

    policy: str
    churn_period: Optional[int]
    batch_instructions_b: float
    qos_violations: int
    churn_events: int


def run_churn_study(
    mix_index: int = 0,
    cap: float = 0.7,
    load: float = 0.8,
    n_slices: int = 16,
    churn_period: int = 3,
    seed: int = 7,
) -> Tuple[ChurnOutcome, ...]:
    """CuttleSys and the oracle, with and without job churn."""
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    pool = synthetic_population(24, seed=seed + 100, prefix="newcomer")
    outcomes = []
    for name, factory in (
        ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=seed)),
        ("oracle-reconfig", lambda m: OracleReconfigPolicy(seed=seed)),
    ):
        for period in (None, churn_period):
            machine = build_machine_for_mix(mix, seed=seed)
            policy = factory(machine)
            run = run_policy(
                machine, policy, LoadTrace.constant(load),
                power_cap_fraction=cap, n_slices=n_slices,
                max_power_w=reference,
                churn_period=period, churn_pool=pool if period else None,
                churn_seed=seed,
            )
            outcomes.append(
                ChurnOutcome(
                    policy=name,
                    churn_period=period,
                    batch_instructions_b=(
                        run.total_batch_instructions() / 1e9
                    ),
                    qos_violations=run.qos_violations(),
                    churn_events=len(run.churn_events),
                )
            )
    return tuple(outcomes)


def churn_cost(outcomes: Tuple[ChurnOutcome, ...], policy: str) -> float:
    """Work retained under churn, relative to the stable run."""
    stable = next(
        o for o in outcomes
        if o.policy == policy and o.churn_period is None
    )
    churned = next(
        o for o in outcomes
        if o.policy == policy and o.churn_period is not None
    )
    return churned.batch_instructions_b / max(
        stable.batch_instructions_b, 1e-9
    )


def render_churn_study(outcomes: Tuple[ChurnOutcome, ...]) -> str:
    """Text table of the churn study."""
    rows = [
        (
            o.policy,
            "stable" if o.churn_period is None
            else f"every {o.churn_period} quanta",
            f"{o.batch_instructions_b:.2f}",
            o.qos_violations,
            o.churn_events,
        )
        for o in outcomes
    ]
    table = format_table(
        ["policy", "churn", "batch instr (B)", "QoS viol.", "arrivals"],
        rows,
    )
    retained = churn_cost(outcomes, "cuttlesys")
    return (
        table
        + f"\nCuttleSys retains {retained:.0%} of its stable-mix work "
        "while absorbing unseen arrivals."
    )

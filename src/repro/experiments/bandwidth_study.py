"""Extension study: memory-bandwidth contention (fidelity add-on).

The headline evaluation isolates cache interference (as the paper's
does); this study turns on the shared-bandwidth model of
:mod:`repro.sim.memory` and asks two questions:

1. **Does Flicker's pinned-wide methodology now violate QoS?**  In the
   paper, method (b) overshoots QoS by ~1.5x; without a bandwidth
   model our substrate could not reproduce that (EXPERIMENTS.md).  With
   contention on, sixteen unthrottled wide batch jobs saturate the
   memory system and push the pinned LC service over its target.
2. **Does CuttleSys cope?**  Its measured matrices absorb contention —
   "any interference between them is handled by updating the
   reconstruction matrix with the measured values during runtime"
   (§VIII-A2) — so the controller should hold QoS by settling on
   less bandwidth-hungry configurations, trading some batch work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.baselines.flicker import FlickerMethod, FlickerPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.reporting import format_table
from repro.sim.machine import Machine, MachineParams
from repro.workloads.batch import batch_profile
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class BandwidthOutcome:
    """One (policy, bandwidth) cell of the study."""

    policy: str
    bandwidth_gbps: float
    batch_instructions_b: float
    qos_violations: int
    worst_p99_over_qos: float
    mean_stall_multiplier: float


def _machine(mix_index: int, bandwidth_gbps: float, seed: int) -> Machine:
    mix = paper_mixes()[mix_index]
    params = MachineParams(peak_memory_bandwidth_gbps=bandwidth_gbps)
    return Machine(
        lc_service=lc_service(mix.lc_name),
        batch_profiles=[batch_profile(n) for n in mix.batch_names],
        params=params,
        seed=seed,
    )


def run_bandwidth_study(
    mix_index: int = 0,
    bandwidths: Tuple[float, ...] = (math.inf, 60.0),
    cap: float = 0.8,
    load: float = 0.8,
    n_slices: int = 10,
    seed: int = 7,
) -> Dict[float, Dict[str, BandwidthOutcome]]:
    """CuttleSys and Flicker-(b) with and without bandwidth contention."""
    results: Dict[float, Dict[str, BandwidthOutcome]] = {}
    for bandwidth in bandwidths:
        per_policy: Dict[str, BandwidthOutcome] = {}
        for name, factory in (
            ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=seed)),
            ("flicker-b", lambda m: FlickerPolicy(
                method=FlickerMethod.PIN_LC, seed=seed)),
        ):
            machine = _machine(mix_index, bandwidth, seed)
            reference = machine.reference_max_power()
            policy = factory(machine)
            run = run_policy(
                machine, policy, LoadTrace.constant(load),
                power_cap_fraction=cap, n_slices=n_slices,
                max_power_w=reference,
            )
            per_policy[name] = BandwidthOutcome(
                policy=name,
                bandwidth_gbps=bandwidth,
                batch_instructions_b=run.total_batch_instructions() / 1e9,
                qos_violations=run.qos_violations(),
                worst_p99_over_qos=run.worst_p99_ratio(),
                mean_stall_multiplier=float(
                    np.mean(
                        [m.memory_stall_multiplier for m in run.measurements]
                    )
                ),
            )
        results[bandwidth] = per_policy
    return results


def render_bandwidth_study(
    results: Dict[float, Dict[str, BandwidthOutcome]]
) -> str:
    """Text table of the study."""
    rows = []
    for bandwidth, per_policy in results.items():
        label = "inf" if math.isinf(bandwidth) else f"{bandwidth:.0f}"
        for outcome in per_policy.values():
            rows.append(
                (
                    f"{label} GB/s",
                    outcome.policy,
                    f"{outcome.batch_instructions_b:.2f}",
                    outcome.qos_violations,
                    f"{outcome.worst_p99_over_qos:.2f}x",
                    f"{outcome.mean_stall_multiplier:.2f}",
                )
            )
    return format_table(
        ["bandwidth", "policy", "batch instr (B)", "QoS viol.",
         "worst p99/QoS", "mean stall mult."],
        rows,
    )

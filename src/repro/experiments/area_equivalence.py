"""Extension study: equal-area comparison (the paper's 19 % area cost).

§VII: "Reconfigurable cores also consume 19 % higher area... The
performance benefits of CuttleSys are achieved at the cost of 19 % more
area."  The paper compares at *fixed power*; a skeptic would ask what
happens at *fixed silicon*: the area of 32 reconfigurable cores buys
roughly 38 fixed cores.  This study runs both options under the same
power caps:

* ``reconfig-32``  — 32 reconfigurable cores, CuttleSys (16 LC cores,
  16 batch jobs);
* ``fixed-38``     — 38 fixed cores, core gating + way partitioning
  (16 LC cores, 22 batch jobs).

Under power-capped operation the extra fixed cores often cannot all be
powered anyway (exactly the paper's §VII argument), so the fixed-area
advantage shrinks as the cap tightens.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.baselines.core_gating import CoreGatingPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.reporting import format_table
from repro.sim.machine import Machine, MachineParams
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace

#: Area overhead of reconfigurable cores (AnyCore RTL analysis, §VII).
AREA_OVERHEAD = 0.19


@dataclass(frozen=True)
class AreaOutcome:
    """One (design, cap) cell."""

    design: str
    cap: float
    batch_instructions_b: float
    qos_violations: int


def _reconfig_machine(service_name: str, seed: int) -> Machine:
    _, test_names = train_test_split()
    profiles = [
        batch_profile(test_names[i % len(test_names)]) for i in range(16)
    ]
    return Machine(
        lc_service=lc_service(service_name),
        batch_profiles=profiles,
        params=MachineParams(n_cores=32),
        seed=seed,
    )


def _fixed_machine(service_name: str, seed: int, n_cores: int) -> Machine:
    _, test_names = train_test_split()
    n_batch = n_cores - 16
    profiles = [
        batch_profile(test_names[i % len(test_names)]) for i in range(n_batch)
    ]
    return Machine(
        lc_service=lc_service(service_name),
        batch_profiles=profiles,
        params=MachineParams(n_cores=n_cores),
        perf=PerformanceModel(reconfigurable=False),
        power=PowerModel(reconfigurable=False),
        seed=seed,
    )


def run_area_equivalence(
    service_name: str = "xapian",
    caps: Sequence[float] = (0.9, 0.7, 0.5),
    load: float = 0.8,
    n_slices: int = 10,
    seed: int = 7,
) -> Dict[float, Tuple[AreaOutcome, AreaOutcome]]:
    """Equal-silicon comparison across power caps.

    Both designs share the reconfigurable machine's reference power
    budget, as in the paper's fixed-power scenarios.
    """
    fixed_cores = int(math.floor(32 * (1 + AREA_OVERHEAD)))  # 38
    results: Dict[float, Tuple[AreaOutcome, AreaOutcome]] = {}
    reference = _reconfig_machine(service_name, seed).reference_max_power()
    for cap in caps:
        reconf_machine = _reconfig_machine(service_name, seed)
        cuttlesys = CuttleSysPolicy.for_machine(reconf_machine, seed=seed)
        reconf_run = run_policy(
            reconf_machine, cuttlesys, LoadTrace.constant(load),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        fixed_machine = _fixed_machine(service_name, seed, fixed_cores)
        gating = CoreGatingPolicy(way_partition=True)
        fixed_run = run_policy(
            fixed_machine, gating, LoadTrace.constant(load),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        results[cap] = (
            AreaOutcome(
                design="reconfig-32",
                cap=cap,
                batch_instructions_b=reconf_run.total_batch_instructions() / 1e9,
                qos_violations=reconf_run.qos_violations(),
            ),
            AreaOutcome(
                design=f"fixed-{fixed_cores}",
                cap=cap,
                batch_instructions_b=fixed_run.total_batch_instructions() / 1e9,
                qos_violations=fixed_run.qos_violations(),
            ),
        )
    return results


def render_area_equivalence(
    results: Dict[float, Tuple[AreaOutcome, AreaOutcome]]
) -> str:
    """Text table of the equal-area study."""
    rows = []
    for cap, (reconf, fixed) in results.items():
        ratio = reconf.batch_instructions_b / max(
            fixed.batch_instructions_b, 1e-9
        )
        rows.append(
            (
                f"{cap:.0%}",
                f"{reconf.batch_instructions_b:.2f}",
                f"{fixed.batch_instructions_b:.2f}",
                f"{ratio:.2f}x",
            )
        )
    fixed_name = next(iter(results.values()))[1].design
    return format_table(
        ["cap", "reconfig-32 (B)", f"{fixed_name} (B)", "reconfig/fixed"],
        rows,
    )

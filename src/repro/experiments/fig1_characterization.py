"""Fig. 1 — characterisation of the five LC services across core configs.

For each TailBench-like service, tail latency and per-core power on a
16-core machine in every one of the 27 core configurations, at 20 % and
80 % load.  Reproduces the paper's headline observations:

* at high load, tail latency explodes as the bottleneck section narrows;
* at low load, even low configurations keep latency acceptable;
* the bottleneck section — and therefore the lowest-power
  QoS-feasible configuration — differs per service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import format_table
from repro.sim.coreconfig import CORE_CONFIGS, CoreConfig
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.latency_critical import LC_SERVICE_NAMES, make_services

#: The paper characterises on a 16-core homogeneous system.
CHARACTERIZATION_CORES = 16
CHARACTERIZATION_WAYS = 4.0


@dataclass(frozen=True)
class ServiceCharacterization:
    """Latency/power of one service at one load across 27 core configs."""

    service: str
    load: float
    #: p99 latency in seconds, indexed by CoreConfig.index.
    tail_latency: np.ndarray
    #: Per-core power in watts, indexed by CoreConfig.index.
    power: np.ndarray
    qos_latency_s: float

    def qos_feasible(self) -> np.ndarray:
        """Boolean mask of configurations meeting QoS."""
        return self.tail_latency <= self.qos_latency_s

    def best_low_power_config(self) -> Optional[CoreConfig]:
        """Least-power configuration meeting QoS (None if infeasible)."""
        feasible = self.qos_feasible()
        if not feasible.any():
            return None
        masked = np.where(feasible, self.power, np.inf)
        return CORE_CONFIGS[int(np.argmin(masked))]


def run_fig1(
    services: Optional[Sequence[str]] = None,
    loads: Tuple[float, ...] = (0.2, 0.8),
    perf: Optional[PerformanceModel] = None,
    power: Optional[PowerModel] = None,
) -> Dict[str, Dict[float, ServiceCharacterization]]:
    """Characterise each service at each load across all core configs."""
    perf = perf if perf is not None else PerformanceModel()
    power_model = power if power is not None else PowerModel()
    names = list(services) if services is not None else list(LC_SERVICE_NAMES)
    catalogue = make_services(perf)
    results: Dict[str, Dict[float, ServiceCharacterization]] = {}
    for name in names:
        service = catalogue[name]
        per_load: Dict[float, ServiceCharacterization] = {}
        for load in loads:
            latency = np.empty(len(CORE_CONFIGS))
            watts = np.empty(len(CORE_CONFIGS))
            for config in CORE_CONFIGS:
                latency[config.index] = service.tail_latency(
                    perf,
                    config,
                    CHARACTERIZATION_WAYS,
                    load,
                    CHARACTERIZATION_CORES,
                )
                util = min(
                    1.0,
                    service.utilization(
                        perf,
                        config,
                        CHARACTERIZATION_WAYS,
                        load,
                        CHARACTERIZATION_CORES,
                    ),
                )
                watts[config.index] = power_model.core_power(
                    service.profile, config, utilization=util
                )
            per_load[load] = ServiceCharacterization(
                service=name,
                load=load,
                tail_latency=latency,
                power=watts,
                qos_latency_s=service.qos_latency_s,
            )
        results[name] = per_load
    return results


def render_fig1(
    results: Dict[str, Dict[float, ServiceCharacterization]],
    top_n: int = 8,
) -> str:
    """Text rendering: per service, configs ordered by latency at 80 %."""
    blocks: List[str] = []
    for name, per_load in results.items():
        high = per_load[max(per_load)]
        low = per_load[min(per_load)]
        order = np.argsort(high.tail_latency)
        rows = []
        for rank, idx in enumerate(order[:top_n]):
            config = CORE_CONFIGS[int(idx)]
            rows.append(
                (
                    config.label,
                    f"{high.tail_latency[idx] * 1e3:.2f}",
                    f"{low.tail_latency[idx] * 1e3:.2f}",
                    f"{high.power[idx]:.2f}",
                    "yes" if high.qos_feasible()[idx] else "no",
                )
            )
        best = high.best_low_power_config()
        blocks.append(
            f"== {name} (QoS {high.qos_latency_s * 1e3:.2f} ms; "
            f"best low-power QoS config at {high.load:.0%} load: "
            f"{best.label if best else 'none'}) ==\n"
            + format_table(
                ["config", "p99@80% (ms)", "p99@20% (ms)", "W/core@80%", "QoS@80%"],
                rows,
            )
        )
    return "\n\n".join(blocks)

"""Small text-rendering helpers shared by the experiment modules."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def percentile_summary(errors: np.ndarray) -> Dict[str, float]:
    """The box-plot numbers the paper reports (Fig. 5, Fig. 9)."""
    flat = np.asarray(errors, dtype=float).ravel()
    if flat.size == 0:
        raise ValueError("no errors to summarise")
    return {
        "p5": float(np.percentile(flat, 5)),
        "p25": float(np.percentile(flat, 25)),
        "median": float(np.percentile(flat, 50)),
        "p75": float(np.percentile(flat, 75)),
        "p95": float(np.percentile(flat, 95)),
        "max_abs": float(np.max(np.abs(flat))),
    }


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([str(cell) for cell in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(rendered):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def relative_error_percent(
    predicted: np.ndarray, truth: np.ndarray
) -> np.ndarray:
    """Signed percentage error, elementwise."""
    predicted = np.asarray(predicted, dtype=float)
    truth = np.asarray(truth, dtype=float)
    if predicted.shape != truth.shape:
        raise ValueError("shape mismatch between predictions and truth")
    return (predicted - truth) / truth * 100.0

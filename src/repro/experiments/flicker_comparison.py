"""§VIII-E — comparison with Flicker.

Three results:

* **QoS violations.** Flicker method (a) cycles every core — including
  the LC service's — through nine 10 ms profiling configurations per
  100 ms slice, so ~11 % of queries see the narrowest core near
  saturation: the slice p99 lands an order of magnitude over QoS.
  Method (b) pins the LC cores wide and profiles batch cores for
  9 x 1 ms, still leaving the service with no latency-aware
  configuration or cache isolation: p99 overshoots QoS by ~1.5x.
  Both are computed with the mixture-tail model of
  :func:`repro.workloads.queueing.mixture_p99`.
* **Throughput.** CuttleSys vs Flicker method (b) through the harness.
* The estimator and explorer pieces are compared separately in
  Fig. 9 and Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.baselines.flicker import FlickerMethod, FlickerPolicy
from repro.core.rbf import l9_sample_configs
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes
from repro.workloads.queueing import mixture_p99


@dataclass(frozen=True)
class FlickerQoSResult:
    """Slice p99 (relative to QoS) under each Flicker methodology."""

    service: str
    method_a_p99_over_qos: float
    method_b_p99_over_qos: float
    cuttlesys_p99_over_qos: float


def run_flicker_qos(
    mix_index: int = 0, load: float = 0.8, seed: int = 7
) -> FlickerQoSResult:
    """Mixture-tail p99 of the LC service under each profiling schedule."""
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    service = machine.lc_service
    qos = service.qos_latency_s
    n_cores = 16

    sample_joints = [
        JointConfig(core, CACHE_ALLOCS[-1]) for core in l9_sample_configs()
    ]
    per_config_p99 = [
        machine.true_lc_p99(joint, load, n_cores) for joint in sample_joints
    ]
    steady = machine.true_lc_p99(
        JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1]), load, n_cores
    )

    # Method (a): 9 x 10 ms profiling + 2 ms GA + 8 ms steady state; the
    # LC cores cycle through every sampled configuration.
    fractions_a = [0.10] * 9 + [0.10]
    p99s_a = per_config_p99 + [steady]
    p99_a = mixture_p99(fractions_a, p99s_a)

    # Method (b): LC pinned to the widest configuration all slice, but
    # with no cache isolation (Flicker does not partition the LLC) and
    # no latency-aware tuning; the LLC share during batch profiling is
    # the unmanaged equal split.
    shared_ways = (
        machine.params.llc_ways
        / (len(machine.batch_profiles) + 1)
        * machine.params.shared_llc_efficiency
    )
    pinned = machine.lc_service.tail_latency(
        machine.perf, CoreConfig.widest(), shared_ways, load, n_cores,
        shared_way=True,
    )
    p99_b = pinned

    # CuttleSys keeps the service on a QoS-meeting configuration with a
    # dedicated partition; its worst steady-state latency is the QoS
    # guard target.
    p99_cuttlesys = steady

    return FlickerQoSResult(
        service=service.name,
        method_a_p99_over_qos=p99_a / qos,
        method_b_p99_over_qos=p99_b / qos,
        cuttlesys_p99_over_qos=p99_cuttlesys / qos,
    )


@dataclass(frozen=True)
class FlickerThroughputResult:
    """Useful-work comparison against Flicker method (b)."""

    cuttlesys_instructions: float
    flicker_instructions: float
    cuttlesys_qos_violations: int
    flicker_over_qos_worst: float

    @property
    def advantage(self) -> float:
        """CuttleSys batch work over Flicker's."""
        return self.cuttlesys_instructions / max(self.flicker_instructions, 1e-9)


def run_flicker_throughput(
    mix_index: int = 0,
    cap: float = 0.7,
    n_slices: int = 8,
    load: float = 0.8,
    seed: int = 7,
) -> FlickerThroughputResult:
    """Run both systems through the harness at one cap."""
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    trace = LoadTrace.constant(load)

    machine = build_machine_for_mix(mix, seed=seed)
    cuttlesys = CuttleSysPolicy.for_machine(machine, seed=seed)
    run_cs = run_policy(
        machine, cuttlesys, trace, power_cap_fraction=cap,
        n_slices=n_slices, max_power_w=reference,
    )

    machine_f = build_machine_for_mix(mix, seed=seed)
    flicker = FlickerPolicy(method=FlickerMethod.PIN_LC, seed=seed)
    run_f = run_policy(
        machine_f, flicker, trace, power_cap_fraction=cap,
        n_slices=n_slices, max_power_w=reference,
    )
    return FlickerThroughputResult(
        cuttlesys_instructions=run_cs.total_batch_instructions(),
        flicker_instructions=run_f.total_batch_instructions(),
        cuttlesys_qos_violations=run_cs.qos_violations(),
        flicker_over_qos_worst=run_f.worst_p99_ratio(),
    )


def render_flicker(
    qos: FlickerQoSResult, throughput: FlickerThroughputResult
) -> str:
    """Text rendering of the §VIII-E comparison."""
    table = format_table(
        ["scheme", "p99 / QoS"],
        [
            ("Flicker method (a): profile all cores", f"{qos.method_a_p99_over_qos:.1f}x"),
            ("Flicker method (b): LC pinned wide", f"{qos.method_b_p99_over_qos:.2f}x"),
            ("CuttleSys", f"{qos.cuttlesys_p99_over_qos:.2f}x"),
        ],
    )
    return (
        f"Flicker comparison ({qos.service})\n{table}\n\n"
        f"Throughput (method b, harness): CuttleSys "
        f"{throughput.advantage:.2f}x Flicker "
        f"({throughput.cuttlesys_instructions / 1e9:.2f}B vs "
        f"{throughput.flicker_instructions / 1e9:.2f}B instructions; "
        f"CuttleSys QoS violations: {throughput.cuttlesys_qos_violations}, "
        f"Flicker worst p99/QoS: {throughput.flicker_over_qos_worst:.2f}x)"
    )

"""Experiment modules: one per table/figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning a plain dataclass of
results plus a ``render`` helper that prints the same rows/series the
paper reports.  The benchmark harness under ``benchmarks/`` calls these;
see DESIGN.md for the experiment index.
"""

from repro.experiments.harness import (
    PolicyRun,
    build_machine_for_mix,
    run_policy,
)

__all__ = ["PolicyRun", "build_machine_for_mix", "run_policy"]

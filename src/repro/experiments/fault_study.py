"""Robustness study: hardened vs unhardened control under injected faults.

Each scenario from :func:`repro.faults.scenarios.default_scenarios` runs
twice on identical machines and seeds:

* **hardened** — the default :class:`~repro.core.controller.ControllerConfig`
  (sample sanitisation, safe mode, reconfiguration quarantine) with the
  harness's ``on_policy_error="degrade"`` containment;
* **unhardened** — ``ControllerConfig(hardened=False)`` and
  ``on_policy_error="raise"``, i.e. the pre-robustness decision loop,
  where a single NaN profiling sample kills the run.

An aborted run leaves its remaining slices unserved; the study counts
those as QoS violations (the service is down, which is strictly worse
than slow).  The headline claim — checked by the acceptance tests — is
that the hardened controller finishes every scenario with fewer QoS
violations than the unhardened one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    PolicyRun,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.faults import FaultInjector, FaultScenario, default_scenarios
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    telemetry_records,
)
from repro.logs import get_logger
from repro.telemetry import Telemetry
from repro.telemetry.live import LiveAggregator
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

log = get_logger("experiments.fault_study")


@dataclass(frozen=True)
class FaultStudyOutcome:
    """One (scenario, controller arm) cell of the robustness study."""

    scenario: str
    policy: str  # "hardened" | "unhardened"
    n_slices: int
    completed_slices: int
    aborted: bool
    #: QoS violations over served slices, plus one per unserved slice
    #: of an aborted run (downtime counts against QoS).
    qos_violations: int
    degraded_quanta: int
    batch_instructions_b: float
    injected: int
    detected: int
    recovered: int
    #: Which paper mix the cell ran on (multi-mix grids disambiguate).
    mix_index: int = 0


def _counter_total(telemetry: Telemetry, prefix: str) -> int:
    """Sum all telemetry counters under ``prefix``."""
    counters = telemetry.metrics.as_dict().get("counters", {})
    return int(
        sum(v for k, v in counters.items() if k.startswith(prefix))
    )


def _run_arm(
    scenario: FaultScenario,
    hardened: bool,
    mix,
    reference: float,
    cap: float,
    load: float,
    n_slices: int,
    seed: int,
) -> Tuple[FaultStudyOutcome, Telemetry]:
    machine = build_machine_for_mix(mix, seed=seed)
    config = ControllerConfig(seed=seed, hardened=hardened)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=config)
    telemetry = Telemetry()
    faults = FaultInjector.from_scenario(scenario, telemetry=telemetry)
    aborted = False
    run: Optional[PolicyRun] = None
    try:
        run = run_policy(
            machine,
            policy,
            LoadTrace.constant(load),
            power_cap_fraction=cap,
            n_slices=n_slices,
            max_power_w=reference,
            telemetry=telemetry,
            faults=faults,
            on_policy_error="degrade" if hardened else "raise",
        )
    except Exception as exc:  # unhardened arm: a fault killed the loop
        aborted = True
        run = getattr(exc, "partial_run", None)
        log.info(
            "scenario %s (%s): run aborted after %d slices: %s: %s",
            scenario.name,
            "hardened" if hardened else "unhardened",
            run.n_slices if run is not None else 0,
            type(exc).__name__,
            exc,
        )
    completed = run.n_slices if run is not None else 0
    served_violations = run.qos_violations() if run is not None else 0
    unserved = n_slices - completed
    instructions = (
        run.total_batch_instructions() / 1e9 if run is not None else 0.0
    )
    outcome = FaultStudyOutcome(
        scenario=scenario.name,
        policy="hardened" if hardened else "unhardened",
        n_slices=n_slices,
        completed_slices=completed,
        aborted=aborted,
        qos_violations=served_violations + unserved,
        degraded_quanta=run.degraded_quanta if run is not None else 0,
        batch_instructions_b=instructions,
        injected=_counter_total(telemetry, "faults.injected."),
        detected=_counter_total(telemetry, "faults.detected."),
        recovered=_counter_total(telemetry, "faults.recovered."),
    )
    return outcome, telemetry


def _fault_cell(
    scenario: FaultScenario,
    hardened: bool,
    mix_index: int,
    cap: float,
    load: float,
    n_slices: int,
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One (scenario, arm) cell as a JSONable fleet unit value.

    Top-level so worker processes can unpickle it by reference.  The
    mix and power reference are rebuilt from ``mix_index`` inside the
    unit (both are deterministic in the seed), keeping the kwargs
    picklable and the value plain JSON.
    """
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    outcome, telemetry = _run_arm(
        scenario, hardened, mix, reference, cap, load, n_slices, seed,
    )
    cell: Dict[str, Any] = asdict(replace(outcome, mix_index=mix_index))
    if collect_telemetry:
        cell["telemetry"] = telemetry_records(telemetry)
    return cell


def fault_study_units(
    mix_indices: Sequence[int],
    cap: float,
    load: float,
    n_slices: int,
    seed: int,
    scenarios: Sequence[FaultScenario],
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The study's fleet work units, one per (mix, scenario, arm).

    Unit ids are mix-qualified so one checkpoint file can snapshot a
    whole multi-mix sweep (the single-mix limitation of the original
    study is gone).
    """
    return [
        WorkUnit(
            unit_id=(
                f"faults/m{mix_index}/{scenario.name}/"
                f"{'hardened' if hardened else 'unhardened'}"
            ),
            fn=_fault_cell,
            kwargs={
                "scenario": scenario, "hardened": hardened,
                "mix_index": mix_index, "cap": cap, "load": load,
                "n_slices": n_slices, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for mix_index in mix_indices
        for scenario in scenarios
        for hardened in (True, False)
    ]


def outcomes_from_cells(
    cells: Sequence[Dict[str, Any]],
) -> Tuple[FaultStudyOutcome, ...]:
    """Rehydrate :class:`FaultStudyOutcome` rows from unit cell dicts."""
    return tuple(
        FaultStudyOutcome(**{
            key: value for key, value in cell.items()
            if key != "telemetry"
        })
        for cell in cells
    )


def run_fault_study(
    mix_index: int = 0,
    cap: float = 0.7,
    load: float = 0.7,
    n_slices: int = 12,
    seed: int = 7,
    scenarios: Optional[Sequence[FaultScenario]] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    live: Optional[LiveAggregator] = None,
    mix_indices: Optional[Sequence[int]] = None,
) -> Tuple[FaultStudyOutcome, ...]:
    """Hardened vs unhardened CuttleSys across the fault scenarios.

    Both arms of each scenario see byte-identical machines, training
    sets, and injection streams (the injector reseeds per scenario), so
    any divergence is the hardening, not luck.

    The (mix, scenario, arm) cells are independent simulations, so the
    study shards them as a fleet grid: ``jobs``/``checkpoint``/``resume``
    behave as for the other studies, and ``--jobs N`` output is
    byte-identical to serial.  ``live`` streams worker events (and each
    cell's telemetry shard) through a
    :class:`~repro.telemetry.live.LiveAggregator` mid-run.

    ``mix_indices`` sweeps several mixes in one fleet run — one
    checkpoint file then covers the whole grid.  ``mix_index`` remains
    as the single-mix shorthand and is ignored when ``mix_indices`` is
    given.
    """
    if scenarios is None:
        scenarios = default_scenarios(seed)
    if mix_indices is None:
        mix_indices = (mix_index,)
    fleet = FleetRun(
        "fault_study",
        fault_study_units(
            mix_indices, cap, load, n_slices, seed, scenarios,
            collect_telemetry=live is not None,
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={
            "mix_indices": list(mix_indices), "cap": cap, "load": load,
            "n_slices": n_slices,
            "scenarios": [s.name for s in scenarios],
        },
        telemetry=telemetry,
        live=live,
    )
    return outcomes_from_cells(fleet.execute().values())


def study_totals(
    outcomes: Sequence[FaultStudyOutcome],
) -> Dict[str, Dict[str, int]]:
    """Aggregate per-arm totals (aborts, QoS violations, degradations)."""
    totals: Dict[str, Dict[str, int]] = {}
    for o in outcomes:
        arm = totals.setdefault(
            o.policy,
            {
                "aborted": 0,
                "qos_violations": 0,
                "degraded_quanta": 0,
                "injected": 0,
                "detected": 0,
                "recovered": 0,
            },
        )
        arm["aborted"] += int(o.aborted)
        arm["qos_violations"] += o.qos_violations
        arm["degraded_quanta"] += o.degraded_quanta
        arm["injected"] += o.injected
        arm["detected"] += o.detected
        arm["recovered"] += o.recovered
    return totals


def render_fault_study(outcomes: Sequence[FaultStudyOutcome]) -> str:
    """Text table plus the hardened-vs-unhardened headline.

    Multi-mix grids get a leading ``mix`` column; single-mix output is
    byte-identical to what the study printed before mixes existed.
    """
    multi_mix = len({o.mix_index for o in outcomes}) > 1
    rows = [
        ((f"m{o.mix_index}",) if multi_mix else ())
        + (
            o.scenario,
            o.policy,
            f"{o.completed_slices}/{o.n_slices}"
            + (" ABORT" if o.aborted else ""),
            o.qos_violations,
            o.degraded_quanta,
            f"{o.batch_instructions_b:.2f}",
            o.injected,
            o.detected,
            o.recovered,
        )
        for o in outcomes
    ]
    table = format_table(
        (["mix"] if multi_mix else [])
        + [
            "scenario", "controller", "slices", "QoS viol.", "degraded",
            "batch instr (B)", "injected", "detected", "recovered",
        ],
        rows,
    )
    totals = study_totals(outcomes)
    hard = totals.get("hardened", {})
    soft = totals.get("unhardened", {})
    return table + (
        f"\nhardened: {hard.get('aborted', 0)} aborted runs, "
        f"{hard.get('qos_violations', 0)} QoS violations "
        f"({hard.get('detected', 0)} faults detected, "
        f"{hard.get('recovered', 0)} recoveries); "
        f"unhardened: {soft.get('aborted', 0)} aborted, "
        f"{soft.get('qos_violations', 0)} QoS violations."
    )

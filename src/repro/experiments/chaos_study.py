"""Chaos/soak harness: invariants under faults, kills, and deadlines.

Each cell of the chaos grid replays one ``(seed, mix, scenario,
decision budget)`` combination three ways — an uninterrupted reference
run, a mid-run kill at quantum ``kill_at`` resumed from the crash-safe
snapshot, and (when the controller entered safe mode) a fault-free
cooldown — then asserts the robustness invariants the rest of the
suite depends on (docs/robustness.md):

* **completes** — every quantum of the hardened run produced a valid
  assignment, even under deadline pressure and injected faults;
* **no-NaN** — QoS accounting (latencies, powers, instruction counts)
  contains only finite numbers;
* **monotonic meters** — the deadline meter and degradation counters
  never move backwards, including across the kill/resume boundary;
* **ladder accounting** — ``controller.degradation.rungs`` equals the
  sum of the per-rung counters, and an *unlimited* budget takes zero
  rungs;
* **safe-mode exits** — a controller that entered safe mode leaves it
  after fault-free quanta (safe mode is a mode, not a terminal state);
* **resume-identical** — the killed-and-resumed run is byte-identical
  (canonical JSON of every measurement) to the uninterrupted one.

Cells are independent simulations, so the soak shards as fleet
:class:`~repro.fleet.WorkUnit` s: ``--jobs`` parallelises,
``--checkpoint``/``--resume`` make long soaks crash-safe — the harness
eats its own dog food.  Every reported number is deterministic in the
seeds, so a failing cell replays exactly with ``repro chaos --seeds N``.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    PolicyRun,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.faults import FaultInjector, scenario_by_name
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.logs import get_logger
from repro.sim.machine import measurement_state
from repro.telemetry import Telemetry
from repro.telemetry.live import LiveAggregator
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

log = get_logger("experiments.chaos_study")

#: Fault regimes soaked by default: fault-free (pure deadline
#: pressure), noisy sensors, and the compound worst case.  ``None``
#: means no injector is attached.
DEFAULT_CHAOS_SCENARIOS: Tuple[Optional[str], ...] = (
    None, "sensor-noise", "perfect-storm",
)

#: Decision budgets soaked by default: unlimited (the zero-rung
#: baseline) and one tight enough to force the reduced-DDS rung.
DEFAULT_CHAOS_BUDGETS: Tuple[Optional[int], ...] = (None, 2000)

#: One representative mix per grid by default (Xapian + memcached-like).
DEFAULT_CHAOS_MIXES: Tuple[int, ...] = (0, 12)

#: Scenario label used for the no-injector cells.
FAULT_FREE = "fault-free"


@dataclass(frozen=True)
class ChaosOutcome:
    """One soaked (seed, mix, scenario, budget) cell of the chaos grid."""

    seed: int
    mix_index: int
    scenario: str  # scenario name or ``FAULT_FREE``
    budget: Optional[int]  # decision budget (None = unlimited)
    n_slices: int
    kill_at: int
    #: Invariant violations; an empty tuple means the cell is healthy.
    violations: Tuple[str, ...]
    #: Degradation-ladder rungs taken by the reference run.
    degradation_rungs: int
    #: Faults injected into the reference run.
    injected: int
    #: Safe-mode entries observed in the reference run.
    safe_mode_entries: int
    #: Whether the killed-and-resumed run matched byte-for-byte.
    resume_identical: bool

    @property
    def ok(self) -> bool:
        """Whether every invariant held."""
        return not self.violations


def _run_canonical_bytes(run: PolicyRun) -> str:
    """Canonical JSON of everything a run measured.

    Shortest-repr float serialisation round-trips exactly, so two runs
    agree on this string iff they agree on every measurement bit.
    """
    return json.dumps(
        {
            "measurements": [
                measurement_state(m) for m in run.measurements
            ],
            "loads": list(run.loads),
            "budgets": list(run.budgets),
            "degraded_quanta": run.degraded_quanta,
            "churn_events": [list(e) for e in run.churn_events],
        },
        sort_keys=True,
    )


def _walk_nonfinite(value: Any, path: str, bad: List[str]) -> None:
    """Collect paths of NaN/inf floats inside a JSONable structure."""
    if isinstance(value, float):
        if not math.isfinite(value):
            bad.append(path)
    elif isinstance(value, dict):
        for key in sorted(value):
            _walk_nonfinite(value[key], f"{path}.{key}", bad)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _walk_nonfinite(item, f"{path}[{i}]", bad)


def _counters(telemetry: Telemetry) -> Dict[str, int]:
    counters = telemetry.metrics.as_dict().get("counters", {})
    return {k: int(v) for k, v in counters.items()}


def _build_arm(
    mix, seed: int, budget: Optional[int], scenario_name: Optional[str],
    telemetry: Optional[Telemetry],
):
    """A fresh (machine, policy, injector) triple for one chaos run.

    Everything is deterministic in ``seed``, so two calls build
    byte-identical starting states — the foundation of the
    resume-identical invariant.
    """
    machine = build_machine_for_mix(mix, seed=seed)
    config = ControllerConfig(
        seed=seed, hardened=True, decision_budget=budget
    )
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=config)
    faults = None
    if scenario_name is not None:
        faults = FaultInjector.from_scenario(
            scenario_by_name(scenario_name, seed=seed), telemetry=telemetry
        )
    return machine, policy, faults


def _chaos_cell(
    scenario_name: Optional[str],
    mix_index: int,
    budget: Optional[int],
    kill_at: int,
    n_slices: int,
    cooldown: int,
    load: float,
    cap: float,
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """Soak one (seed, mix, scenario, budget) cell and check invariants.

    Top-level so worker processes unpickle it by reference; all kwargs
    and the returned dict are plain JSON, as the fleet contract
    requires.
    """
    if not 0 < kill_at < n_slices:
        raise ValueError("kill_at must fall strictly inside the run")
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    trace = LoadTrace.constant(load)
    violations: List[str] = []

    # --- reference run (uninterrupted, telemetry attached) ------------
    telemetry = Telemetry()
    machine, policy, faults = _build_arm(
        mix, seed, budget, scenario_name, telemetry
    )
    run = run_policy(
        machine, policy, trace,
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        telemetry=telemetry, faults=faults,
    )

    # Invariant: the hardened loop serves every quantum.
    if len(run.measurements) != n_slices:
        violations.append(
            f"completes: served {len(run.measurements)}/{n_slices} quanta"
        )
    for i, m in enumerate(run.measurements):
        if m.assignment is None:
            violations.append(f"completes: quantum {i} has no assignment")

    # Invariant: QoS accounting is NaN/inf-free.
    reference_bytes = _run_canonical_bytes(run)
    bad_floats: List[str] = []
    _walk_nonfinite(json.loads(reference_bytes), "run", bad_floats)
    if bad_floats:
        violations.append(
            "no-nan: non-finite values at " + ", ".join(bad_floats[:5])
        )

    # Invariant: counters are non-negative and the ladder adds up.
    counters = _counters(telemetry)
    for name, value in sorted(counters.items()):
        if value < 0:
            violations.append(f"monotonic: counter {name} is {value}")
    rungs = counters.get("controller.degradation.rungs", 0)
    rung_sum = sum(
        v for k, v in counters.items()
        if k.startswith("controller.degradation.")
        and k != "controller.degradation.rungs"
    )
    if rungs != rung_sum:
        violations.append(
            f"ladder: rungs counter {rungs} != per-rung sum {rung_sum}"
        )
    if budget is None and rungs:
        violations.append(
            f"ladder: unlimited budget took {rungs} degradation rung(s)"
        )
    meter = policy.controller.budget
    if meter.quanta > n_slices:
        violations.append(
            f"monotonic: meter counted {meter.quanta} quanta in a "
            f"{n_slices}-quantum run"
        )

    # Invariant: safe mode is a mode, not a terminal state.
    safe_mode_entries = counters.get(
        "faults.detected.safe_mode_entered", 0
    )
    if policy.controller.in_safe_mode:
        cooldown_run = run_policy(
            machine, policy, trace,
            power_cap_fraction=cap, n_slices=cooldown,
            max_power_w=reference,
        )
        if policy.controller.in_safe_mode:
            violations.append(
                f"safe-mode: still in safe mode after {cooldown} "
                f"fault-free quanta"
            )
        if len(cooldown_run.measurements) != cooldown:
            violations.append("safe-mode: cooldown run did not complete")

    # --- kill/resume run (fresh state, killed at kill_at) -------------
    machine2, policy2, faults2 = _build_arm(
        mix, seed, budget, scenario_name, None
    )
    paused = run_policy(
        machine2, policy2, trace,
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        faults=faults2, stop_after=kill_at,
    )
    if paused.resume_state is None:
        violations.append("resume: stop_after returned no resume_state")
        resumed_identical = False
    else:
        paused_meter = paused.resume_state["policy"]["controller"]["budget"]
        resumed = run_policy(
            machine2, policy2, trace,
            power_cap_fraction=cap, n_slices=n_slices,
            max_power_w=reference, faults=faults2,
            resume_state=paused.resume_state,
        )
        final_meter = policy2.controller.budget
        # Monotonicity must survive the crash boundary.
        if final_meter.total_spent < int(paused_meter["total_spent"]):
            violations.append(
                "monotonic: deadline meter moved backwards across "
                f"resume ({paused_meter['total_spent']} -> "
                f"{final_meter.total_spent})"
            )
        if final_meter.quanta < int(paused_meter["quanta"]):
            violations.append(
                "monotonic: quantum meter moved backwards across resume"
            )
        resumed_identical = (
            _run_canonical_bytes(resumed) == reference_bytes
        )
        if not resumed_identical:
            violations.append(
                f"resume: run killed at quantum {kill_at} and resumed "
                f"diverged from the uninterrupted run"
            )

    outcome = ChaosOutcome(
        seed=seed,
        mix_index=mix_index,
        scenario=scenario_name or FAULT_FREE,
        budget=budget,
        n_slices=n_slices,
        kill_at=kill_at,
        violations=tuple(violations),
        degradation_rungs=rungs,
        injected=sum(
            v for k, v in counters.items() if k.startswith("faults.injected.")
        ),
        safe_mode_entries=safe_mode_entries,
        resume_identical=resumed_identical,
    )
    cell: Dict[str, Any] = asdict(outcome)
    cell["violations"] = list(outcome.violations)
    if collect_telemetry:
        cell["telemetry"] = telemetry_records(telemetry)
    return cell


def chaos_units(
    seeds: Sequence[int],
    mix_indices: Sequence[int],
    scenarios: Sequence[Optional[str]],
    budgets: Sequence[Optional[int]],
    n_slices: int,
    cooldown: int,
    load: float,
    cap: float,
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The soak's fleet units, one per (seed, mix, scenario, budget).

    The kill point is derived from the seed (``1 + seed % (n-1)``) so a
    multi-seed soak exercises kills at different quanta without any
    wall-clock or ambient randomness.
    """
    return [
        WorkUnit(
            unit_id=(
                f"chaos/s{seed}/m{mix_index}/"
                f"{scenario or FAULT_FREE}/"
                f"b{budget if budget is not None else 'inf'}"
            ),
            fn=_chaos_cell,
            kwargs={
                "scenario_name": scenario, "mix_index": mix_index,
                "budget": budget,
                "kill_at": 1 + seed % (n_slices - 1),
                "n_slices": n_slices, "cooldown": cooldown,
                "load": load, "cap": cap, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for seed in seeds
        for mix_index in mix_indices
        for scenario in scenarios
        for budget in budgets
    ]


def outcomes_from_cells(
    cells: Sequence[Dict[str, Any]],
) -> Tuple[ChaosOutcome, ...]:
    """Rehydrate :class:`ChaosOutcome` rows from unit cell dicts."""
    outcomes = []
    for cell in cells:
        fields = {
            key: value for key, value in cell.items()
            if key != "telemetry"
        }
        fields["violations"] = tuple(fields["violations"])
        outcomes.append(ChaosOutcome(**fields))
    return tuple(outcomes)


def run_chaos_study(
    seeds: Sequence[int] = (7,),
    mix_indices: Sequence[int] = DEFAULT_CHAOS_MIXES,
    scenarios: Sequence[Optional[str]] = DEFAULT_CHAOS_SCENARIOS,
    budgets: Sequence[Optional[int]] = DEFAULT_CHAOS_BUDGETS,
    n_slices: int = 10,
    cooldown: int = 8,
    load: float = 0.7,
    cap: float = 0.7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional[LiveAggregator] = None,
) -> Tuple[ChaosOutcome, ...]:
    """Soak the decision loop across seeds, mixes, faults and deadlines.

    Returns one :class:`ChaosOutcome` per grid cell in grid order; a
    cell with a non-empty ``violations`` tuple broke an invariant.  The
    grid executes as a fleet run with the usual
    ``jobs``/``checkpoint``/``resume``/``live`` contract — ``--jobs N``
    output is byte-identical to serial, and one checkpoint file covers
    the full multi-seed, multi-mix soak.
    """
    fleet = FleetRun(
        "chaos",
        chaos_units(
            seeds, mix_indices, scenarios, budgets, n_slices, cooldown,
            load, cap,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=min(seeds) if seeds else 0,
        context={
            "seeds": list(seeds), "mix_indices": list(mix_indices),
            "scenarios": [s or FAULT_FREE for s in scenarios],
            "budgets": [b for b in budgets],
            "n_slices": n_slices, "cooldown": cooldown,
            "load": load, "cap": cap,
        },
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    return outcomes_from_cells(outcome.values())


def render_chaos_study(outcomes: Sequence[ChaosOutcome]) -> str:
    """Text table of the soak plus a pass/fail headline."""
    rows = [
        (
            f"s{o.seed}",
            f"m{o.mix_index}",
            o.scenario,
            "inf" if o.budget is None else str(o.budget),
            f"{o.kill_at}/{o.n_slices}",
            o.degradation_rungs,
            o.injected,
            o.safe_mode_entries,
            "yes" if o.resume_identical else "NO",
            "ok" if o.ok else f"{len(o.violations)} VIOLATION(S)",
        )
        for o in outcomes
    ]
    table = format_table(
        [
            "seed", "mix", "scenario", "budget", "kill@", "rungs",
            "injected", "safe-mode", "resume==", "invariants",
        ],
        rows,
    )
    broken = [o for o in outcomes if not o.ok]
    lines = [table, ""]
    if broken:
        lines.append(
            f"{len(broken)}/{len(outcomes)} cell(s) broke invariants:"
        )
        for o in broken:
            for violation in o.violations:
                lines.append(
                    f"  [s{o.seed}/m{o.mix_index}/{o.scenario}/"
                    f"b{'inf' if o.budget is None else o.budget}] "
                    f"{violation}"
                )
    else:
        lines.append(
            f"all {len(outcomes)} cells healthy: every quantum served, "
            f"no NaN, meters monotonic across kills, safe mode always "
            f"exited, resumed runs byte-identical."
        )
    return "\n".join(lines)

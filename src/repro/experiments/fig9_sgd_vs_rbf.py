"""Fig. 9 — prediction error: SGD reconstruction vs RBF surrogate.

Flicker's RBF surrogate needs nine 3MM3 samples; given the two-or-three
samples CuttleSys operates with, the interpolant is wildly
under-determined and extrapolates to errors of hundreds of percent
(the paper shows outliers near 600 %), while SGD's collaborative
filtering stays within tens of percent with just two samples — because
it leans on the offline-characterised population instead of the
samples alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.matrices import ObservedMatrix, power_rows, throughput_rows
from repro.core.rbf import RBFSurrogate, l9_sample_configs
from repro.core.sgd import PQReconstructor, SGDParams
from repro.experiments.reporting import (
    format_table,
    percentile_summary,
    relative_error_percent,
)
from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.batch import batch_profile, train_test_split

#: Number of samples the RBF fit gets (the paper uses 3: it could not
#: converge with 2).
RBF_SAMPLES = 3

HI = JointConfig(CoreConfig.widest(), 1.0)
LO = JointConfig(CoreConfig.narrowest(), 1.0)
MID = JointConfig(CoreConfig(4, 4, 4), 1.0)


@dataclass(frozen=True)
class Fig9Result:
    """Percentile error summaries (percent) for both estimators."""

    sgd_throughput: Dict[str, float]
    sgd_power: Dict[str, float]
    rbf_throughput: Dict[str, float]
    rbf_power: Dict[str, float]


def _rbf_errors(test_rows: np.ndarray, sample_idx: Sequence[int]) -> np.ndarray:
    errors: List[np.ndarray] = []
    for row in test_rows:
        surrogate = RBFSurrogate(log_space=True)
        surrogate.fit(sample_idx, row[list(sample_idx)])
        errors.append(relative_error_percent(surrogate.predict_all(), row))
    return np.concatenate(errors)


def _sgd_errors(
    train_rows: np.ndarray, test_rows: np.ndarray, params: SGDParams
) -> np.ndarray:
    matrix = ObservedMatrix(train_rows.shape[0] + test_rows.shape[0])
    for i in range(train_rows.shape[0]):
        matrix.set_known_row(i, train_rows[i])
    for t in range(test_rows.shape[0]):
        matrix.observe(train_rows.shape[0] + t, HI.index, test_rows[t, HI.index])
        matrix.observe(train_rows.shape[0] + t, LO.index, test_rows[t, LO.index])
    full = PQReconstructor(params).reconstruct(matrix)
    return relative_error_percent(full[train_rows.shape[0]:], test_rows)


def run_fig9(params: SGDParams = SGDParams()) -> Fig9Result:
    """Compare SGD (2 samples) with RBF (3 samples) on the test apps."""
    perf = PerformanceModel()
    power = PowerModel()
    train_names, test_names = train_test_split()
    train_profiles = [batch_profile(n) for n in train_names]
    test_profiles = [batch_profile(n) for n in test_names]

    sample_idx = [HI.index, LO.index, MID.index][:RBF_SAMPLES]
    bips_train = throughput_rows(train_profiles, perf)
    bips_test = throughput_rows(test_profiles, perf)
    power_train = power_rows(train_profiles, power)
    power_test = power_rows(test_profiles, power)

    return Fig9Result(
        sgd_throughput=percentile_summary(
            _sgd_errors(bips_train, bips_test, params)
        ),
        sgd_power=percentile_summary(
            _sgd_errors(power_train, power_test, params)
        ),
        rbf_throughput=percentile_summary(_rbf_errors(bips_test, sample_idx)),
        rbf_power=percentile_summary(_rbf_errors(power_test, sample_idx)),
    )


def render_fig9(result: Fig9Result) -> str:
    """Text rendering of the four error distributions."""
    headers = ["estimator/metric", "p5%", "p25%", "median%", "p75%", "p95%",
               "max|err|%"]
    rows = []
    for label, summary in (
        ("RBF throughput (3 samples)", result.rbf_throughput),
        ("RBF power (3 samples)", result.rbf_power),
        ("SGD throughput (2 samples)", result.sgd_throughput),
        ("SGD power (2 samples)", result.sgd_power),
    ):
        rows.append(
            (
                label,
                f"{summary['p5']:+.1f}",
                f"{summary['p25']:+.1f}",
                f"{summary['median']:+.1f}",
                f"{summary['p75']:+.1f}",
                f"{summary['p95']:+.1f}",
                f"{summary['max_abs']:.0f}",
            )
        )
    return format_table(headers, rows)


def l9_reference() -> List[CoreConfig]:
    """The nine 3MM3 sample configurations (exported for inspection)."""
    return l9_sample_configs()

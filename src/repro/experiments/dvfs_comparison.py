"""Extension study: reconfigurable cores vs DVFS (paper §II-A).

The paper motivates reconfigurable cores with the end of easy voltage
scaling: DVFS on future nodes has razor-thin margins, so down-clocking
saves little power, while section gating removes dynamic *and* leakage
power outright.  This study quantifies that argument on our substrate.

For one workload mix and a range of power caps, four schemes allocate
the post-LC power budget to the 16 batch jobs:

* ``dvfs-legacy`` — per-core DVFS with a generous historical voltage
  range (maxBIPS-style greedy level selection [Isci et al.]),
* ``dvfs-razor`` — the same policy on a razor-thin future-node ladder,
* ``core-gating`` — fixed wide cores, whole-core gating,
* ``reconfig`` — per-job joint configurations found by DDS on the true
  metric tables (the hardware CuttleSys manages, with oracle inference
  so the comparison isolates the *hardware mechanism*).

All schemes use fixed-core physics except ``reconfig``, which pays the
18 % energy and 1.67 % frequency reconfigurability penalties.

Findings on this substrate (see the benchmark output): (1) razor-thin
voltage margins measurably erode DVFS — the legacy ladder beats the
future-node ladder by 10-20 % at stringent caps, the paper's §II-A
trend; (2) reconfiguration dominates whole-core gating by a wide
margin; (3) frequency-only DVFS remains strong for workloads with
memory slack, consistent with the paper's own positioning that
reconfigurable cores *augment* DVFS "for frequency regions where DVFS
is not effective" rather than replace it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.dds import DDSParams, DDSSearch
from repro.core.matrices import latency_row, power_rows, throughput_rows
from repro.core.objective import SystemObjective
from repro.experiments.harness import build_machine_for_mix
from repro.experiments.reporting import format_table
from repro.sim.coreconfig import N_JOINT_CONFIGS, CoreConfig, JointConfig
from repro.sim.dvfs import DVFSModel, legacy_ladder, razor_thin_ladder
from repro.sim.machine import Machine
from repro.sim.power import PowerModel, PowerParams
from repro.workloads.mixes import paper_mixes
from repro.workloads.queueing import MGkQueue

SCHEMES = ("dvfs-legacy", "dvfs-razor", "core-gating", "reconfig")


@dataclass(frozen=True)
class DVFSComparisonResult:
    """Total batch BIPS per (cap, scheme)."""

    caps: Tuple[float, ...]
    total_bips: Dict[float, Dict[str, float]]

    def advantage(self, cap: float, over: str = "core-gating") -> float:
        """Reconfiguration's total-throughput edge over a scheme."""
        return self.total_bips[cap]["reconfig"] / max(
            self.total_bips[cap][over], 1e-9
        )

    def dvfs_headroom_loss(self, cap: float) -> float:
        """How much the razor-thin ladder loses vs the legacy one."""
        return self.total_bips[cap]["dvfs-razor"] / max(
            self.total_bips[cap]["dvfs-legacy"], 1e-9
        )


def _lc_reservation_dvfs(
    machine: Machine, dvfs: DVFSModel, load: float, n_cores: int
) -> float:
    """Least-power ladder level meeting QoS for the LC service."""
    service = machine.lc_service
    best = None
    for level in range(dvfs.n_levels()):
        bips = dvfs.bips(service.profile, level, cache_ways=4.0)
        service_time = service.work_instructions / (bips * 1e9)
        queue = MGkQueue(
            arrival_rate=service.qps_at_load(load),
            service_time_mean=service_time,
            service_scv=service.service_scv,
            servers=n_cores,
        )
        if queue.p99_latency() > service.qos_latency_s:
            continue
        util = min(1.0, queue.utilization)
        watts = dvfs.core_power(service.profile, level, utilization=util)
        if best is None or watts < best:
            best = watts
    if best is None:  # QoS needs the nominal level regardless
        util = 1.0
        best = dvfs.core_power(service.profile, 0, utilization=util)
    return best * n_cores


def _dvfs_allocation(
    machine: Machine, dvfs: DVFSModel, budget: float
) -> float:
    """maxBIPS-style greedy DVFS allocation; returns total batch BIPS.

    Start every core at the top level; while over budget, apply the
    downgrade (or final gating) that loses the least throughput per
    watt saved.
    """
    profiles = machine.batch_profiles
    n = len(profiles)
    levels = np.zeros(n, dtype=int)
    gated = np.zeros(n, dtype=bool)
    residual = machine.power.gated_core_power()

    def job_power(j: int) -> float:
        if gated[j]:
            return residual
        return dvfs.core_power(profiles[j], int(levels[j]))

    def job_bips(j: int) -> float:
        if gated[j]:
            return 0.0
        return dvfs.bips(profiles[j], int(levels[j]), cache_ways=2.0)

    def total_power() -> float:
        return sum(job_power(j) for j in range(n))

    while total_power() > budget:
        best_move = None
        best_cost = np.inf
        for j in range(n):
            if gated[j]:
                continue
            if levels[j] + 1 < dvfs.n_levels():
                new_bips = dvfs.bips(profiles[j], int(levels[j]) + 1, 2.0)
                saved = job_power(j) - dvfs.core_power(
                    profiles[j], int(levels[j]) + 1
                )
                lost = job_bips(j) - new_bips
            else:
                saved = job_power(j) - residual
                lost = job_bips(j)
            if saved <= 0:
                continue
            cost = lost / saved
            if cost < best_cost:
                best_cost = cost
                best_move = j
        if best_move is None:
            break
        if levels[best_move] + 1 < dvfs.n_levels():
            levels[best_move] += 1
        else:
            gated[best_move] = True
    return float(sum(job_bips(j) for j in range(n)))


def _gating_allocation(machine: Machine, budget: float) -> float:
    """Whole-core gating on fixed wide cores; returns total batch BIPS."""
    wide = CoreConfig.widest()
    profiles = machine.batch_profiles
    power = np.array([machine.power.core_power(p, wide) for p in profiles])
    bips = np.array(
        [machine.perf.bips(p, wide, cache_ways=2.0) for p in profiles]
    )
    residual = machine.power.gated_core_power()
    keep = np.ones(len(profiles), dtype=bool)
    order = np.argsort(-power)
    i = 0
    while power[keep].sum() + (~keep).sum() * residual > budget and keep.any():
        keep[order[i]] = False
        i += 1
    return float(bips[keep].sum())


def _reconfig_allocation(
    machine: Machine, budget: float, seed: int
) -> float:
    """DDS over true tables on the reconfigurable machine."""
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    objective = SystemObjective(
        bips=bips,
        power=power,
        max_power=budget,
        max_ways=machine.params.llc_ways - 4.0,
        penalty_power=50.0,
    )
    result = DDSSearch(DDSParams(max_iter=80)).search(
        objective,
        n_dims=len(machine.batch_profiles),
        n_confs=N_JOINT_CONFIGS,
        rng=np.random.default_rng(seed),
    )
    x = result.best_x
    if not objective.is_feasible(x, power_slack=budget * 0.01):
        # Gate hungriest until feasible (mirrors the runtime fallback).
        chosen = [JointConfig.from_index(int(i)) for i in x]
        idx = list(range(len(chosen)))
        idx.sort(key=lambda j: -power[j, chosen[j].index])
        total = sum(power[j, chosen[j].index] for j in range(len(chosen)))
        kept = set(range(len(chosen)))
        for j in idx:
            if total <= budget:
                break
            total -= power[j, chosen[j].index]
            kept.discard(j)
        return float(
            sum(bips[j, chosen[j].index] for j in kept)
        )
    return float(bips[np.arange(len(x)), x].sum())


def run_dvfs_comparison(
    mix_index: int = 0,
    caps: Sequence[float] = (0.9, 0.7, 0.5),
    load: float = 0.8,
    seed: int = 7,
    leakage_scale: float = 1.0,
) -> DVFSComparisonResult:
    """Total batch BIPS per scheme across power caps.

    ``leakage_scale`` models technology nodes with growing leakage
    (§II-A: "the increase in leakage power consumption limit[s] the
    effectiveness of DVFS"): at 1.0 leakage is ~25 % of busy core power
    (DVFS frequency scaling remains effective); at 2.5-3x, down-clocking
    barely moves total power while section gating still removes the
    leaky arrays — the regime where reconfiguration pulls ahead.
    """
    if leakage_scale <= 0:
        raise ValueError("leakage_scale must be positive")
    mix = paper_mixes()[mix_index]
    base = PowerParams()
    scaled = PowerParams(
        fe_leakage=base.fe_leakage * leakage_scale,
        be_leakage=base.be_leakage * leakage_scale,
        ls_leakage=base.ls_leakage * leakage_scale,
        other_leakage=base.other_leakage * leakage_scale,
        ls_dynamic=base.ls_dynamic,
    )
    fixed = build_machine_for_mix(mix, seed=seed, reconfigurable=False)
    reconf = build_machine_for_mix(mix, seed=seed)
    fixed = Machine(
        lc_service=fixed.lc_service,
        batch_profiles=fixed.batch_profiles,
        params=fixed.params,
        perf=fixed.perf,
        power=PowerModel(params=scaled, reconfigurable=False),
        seed=seed,
    )
    reconf = Machine(
        lc_service=reconf.lc_service,
        batch_profiles=reconf.batch_profiles,
        params=reconf.params,
        perf=reconf.perf,
        power=PowerModel(params=scaled, reconfigurable=True),
        seed=seed,
    )
    reference = reconf.reference_max_power()
    lc_cores = 16

    dvfs_models = {
        "dvfs-legacy": DVFSModel(legacy_ladder(), power=fixed.power),
        "dvfs-razor": DVFSModel(razor_thin_ladder(), power=fixed.power),
    }
    totals: Dict[float, Dict[str, float]] = {}
    for cap in caps:
        chip_budget = reference * cap
        per_scheme: Dict[str, float] = {}
        for name, dvfs in dvfs_models.items():
            reserved = (
                _lc_reservation_dvfs(fixed, dvfs, load, lc_cores)
                + fixed.power.llc_power()
            )
            per_scheme[name] = _dvfs_allocation(
                fixed, dvfs, chip_budget - reserved
            )
        # Core gating: fixed LC at nominal on wide cores.
        lc_joint = JointConfig(CoreConfig.widest(), 4.0)
        reserved = (
            fixed.true_lc_power(lc_joint, load, lc_cores) * lc_cores
            + fixed.power.llc_power()
        )
        per_scheme["core-gating"] = _gating_allocation(
            fixed, chip_budget - reserved
        )
        # Reconfigurable: LC at its true least-power QoS config.
        latency = latency_row(reconf.lc_service, reconf.perf, load, lc_cores)
        qos = reconf.lc_service.qos_latency_s
        best_lc, best_watts = None, np.inf
        for i in range(N_JOINT_CONFIGS):
            if latency[i] <= qos:
                joint = JointConfig.from_index(i)
                watts = reconf.true_lc_power(joint, load, lc_cores)
                if watts < best_watts:
                    best_lc, best_watts = joint, watts
        reserved = best_watts * lc_cores + reconf.power.llc_power()
        per_scheme["reconfig"] = _reconfig_allocation(
            reconf, chip_budget - reserved, seed
        )
        totals[cap] = per_scheme
    return DVFSComparisonResult(caps=tuple(caps), total_bips=totals)


def render_dvfs_comparison(result: DVFSComparisonResult) -> str:
    """Text table of the study."""
    rows = []
    for cap in result.caps:
        rows.append(
            [f"{cap:.0%}"]
            + [f"{result.total_bips[cap][s]:.1f}" for s in SCHEMES]
            + [
                f"{result.advantage(cap):.2f}x",
                f"{result.dvfs_headroom_loss(cap):.2f}x",
            ]
        )
    return format_table(
        ["cap"] + list(SCHEMES)
        + ["reconfig/core-gating", "razor/legacy DVFS"],
        rows,
    )

"""Fig. 8 — CuttleSys under dynamic load, power budgets, and relocation.

Three scenarios, all Xapian + a SPEC-like mix:

* **(a) varying load** — diurnal input load at a fixed 70 % cap: the LC
  service's configuration widens as load rises and narrows back, batch
  throughput moves inversely, QoS is met except transiently when load
  rises mid-quantum (decisions react one slice late, as in the paper).
* **(b) varying power budget** — constant 80 % load, cap stepping
  90 % → 60 % → 90 %: the LC configuration holds (QoS needs the same
  watts) while batch configurations absorb the budget swing.
* **(c) core relocation** — a load surge beyond the QoS-feasible range
  of 16 cores makes CuttleSys reclaim cores from the batch jobs (one
  per timeslice) and yield them back when load drops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    PolicyRun,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class DynamicTrace:
    """Per-slice series of one dynamic experiment."""

    scenario: str
    loads: Tuple[float, ...]
    p99_over_qos: Tuple[float, ...]
    batch_gmean_bips: Tuple[float, ...]
    power_w: Tuple[float, ...]
    budget_w: Tuple[float, ...]
    lc_configs: Tuple[str, ...]
    lc_cores: Tuple[int, ...]

    @property
    def n_slices(self) -> int:
        """Number of decision quanta recorded."""
        return len(self.loads)


def _trace_from_run(scenario: str, run: PolicyRun, qos: float) -> DynamicTrace:
    return DynamicTrace(
        scenario=scenario,
        loads=tuple(run.loads),
        p99_over_qos=tuple(m.lc_p99 / qos for m in run.measurements),
        batch_gmean_bips=tuple(run.gmean_throughput_series()),
        power_w=tuple(m.total_power for m in run.measurements),
        budget_w=tuple(run.budgets),
        lc_configs=tuple(
            m.assignment.lc_config.label if m.assignment.lc_config else "-"
            for m in run.measurements
        ),
        lc_cores=tuple(m.assignment.lc_cores for m in run.measurements),
    )


def _run(
    trace: LoadTrace,
    cap: float,
    n_slices: int,
    scenario: str,
    mix_index: int,
    seed: int,
    power_cap_trace: Optional[List[float]] = None,
    config: Optional[ControllerConfig] = None,
) -> DynamicTrace:
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=config)
    run = run_policy(
        machine,
        policy,
        trace,
        power_cap_fraction=cap,
        n_slices=n_slices,
        power_cap_trace=power_cap_trace,
        max_power_w=reference,
    )
    return _trace_from_run(scenario, run, machine.lc_service.qos_latency_s)


def run_fig8a(
    mix_index: int = 0, n_slices: int = 20, seed: int = 7
) -> DynamicTrace:
    """Diurnal load 20 % -> 80 % -> 20 % at a 70 % power cap."""
    diurnal = LoadTrace.diurnal(low=0.2, high=0.8, period=n_slices * 0.1)
    return _run(diurnal, 0.7, n_slices, "fig8a-varying-load", mix_index, seed)


def run_fig8b(
    mix_index: int = 0, n_slices: int = 20, seed: int = 7
) -> DynamicTrace:
    """Power budget step 90 % -> 60 % -> 90 % at constant 80 % load."""
    third = n_slices // 3
    cap_trace = [0.9] * third + [0.6] * third + [0.9] * (n_slices - 2 * third)
    return _run(
        LoadTrace.constant(0.8),
        0.9,
        n_slices,
        "fig8b-varying-budget",
        mix_index,
        seed,
        power_cap_trace=cap_trace,
    )


def run_fig8c(
    mix_index: int = 0, n_slices: int = 24, seed: int = 7,
    surge_load: float = 1.3,
) -> DynamicTrace:
    """Load surge past saturation forcing core relocation, then recovery.

    ``surge_load`` deliberately exceeds the knee (1.0): the service
    cannot meet QoS on its current core allocation at any
    configuration, so CuttleSys reclaims cores from the batch jobs one
    per timeslice (§VI-A) and yields them back once the surge passes.
    """
    surge = LoadTrace.steps(
        [(0.0, 0.2), (n_slices * 0.1 * 0.25, surge_load),
         (n_slices * 0.1 * 0.6, 0.2)]
    )
    return _run(surge, 0.7, n_slices, "fig8c-core-relocation", mix_index, seed)


def render_fig8(trace: DynamicTrace) -> str:
    """Per-slice table of one dynamic scenario."""
    rows = []
    for i in range(trace.n_slices):
        rows.append(
            (
                i,
                f"{trace.loads[i]:.0%}",
                f"{trace.p99_over_qos[i]:.2f}",
                f"{trace.batch_gmean_bips[i]:.2f}",
                f"{trace.power_w[i]:.1f}/{trace.budget_w[i]:.1f}",
                trace.lc_configs[i],
                trace.lc_cores[i],
            )
        )
    return (
        f"== {trace.scenario} ==\n"
        + format_table(
            ["slice", "load", "p99/QoS", "batch gmean", "power/budget",
             "LC config", "LC cores"],
            rows,
        )
    )

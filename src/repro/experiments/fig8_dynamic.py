"""Fig. 8 — CuttleSys under dynamic load, power budgets, and relocation.

Three scenarios, all Xapian + a SPEC-like mix:

* **(a) varying load** — diurnal input load at a fixed 70 % cap: the LC
  service's configuration widens as load rises and narrows back, batch
  throughput moves inversely, QoS is met except transiently when load
  rises mid-quantum (decisions react one slice late, as in the paper).
* **(b) varying power budget** — constant 80 % load, cap stepping
  90 % → 60 % → 90 %: the LC configuration holds (QoS needs the same
  watts) while batch configurations absorb the budget swing.
* **(c) core relocation** — a load surge beyond the QoS-feasible range
  of 16 cores makes CuttleSys reclaim cores from the batch jobs (one
  per timeslice) and yield them back when load drops.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    PolicyRun,
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.telemetry.live import LiveAggregator
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

#: Grid scenarios in merge order (keys of ``run_fig8_grid``'s result).
SCENARIOS: Tuple[str, ...] = ("a", "b", "c")


@dataclass(frozen=True)
class DynamicTrace:
    """Per-slice series of one dynamic experiment."""

    scenario: str
    loads: Tuple[float, ...]
    p99_over_qos: Tuple[float, ...]
    batch_gmean_bips: Tuple[float, ...]
    power_w: Tuple[float, ...]
    budget_w: Tuple[float, ...]
    lc_configs: Tuple[str, ...]
    lc_cores: Tuple[int, ...]

    @property
    def n_slices(self) -> int:
        """Number of decision quanta recorded."""
        return len(self.loads)


def _trace_from_run(scenario: str, run: PolicyRun, qos: float) -> DynamicTrace:
    return DynamicTrace(
        scenario=scenario,
        loads=tuple(run.loads),
        p99_over_qos=tuple(m.lc_p99 / qos for m in run.measurements),
        batch_gmean_bips=tuple(run.gmean_throughput_series()),
        power_w=tuple(m.total_power for m in run.measurements),
        budget_w=tuple(run.budgets),
        lc_configs=tuple(
            m.assignment.lc_config.label if m.assignment.lc_config else "-"
            for m in run.measurements
        ),
        lc_cores=tuple(m.assignment.lc_cores for m in run.measurements),
    )


def _run(
    trace: LoadTrace,
    cap: float,
    n_slices: int,
    scenario: str,
    mix_index: int,
    seed: int,
    power_cap_trace: Optional[List[float]] = None,
    config: Optional[ControllerConfig] = None,
    telemetry: Any = None,
) -> DynamicTrace:
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=config)
    run = run_policy(
        machine,
        policy,
        trace,
        power_cap_fraction=cap,
        n_slices=n_slices,
        power_cap_trace=power_cap_trace,
        max_power_w=reference,
        telemetry=telemetry,
    )
    return _trace_from_run(scenario, run, machine.lc_service.qos_latency_s)


def run_fig8a(
    mix_index: int = 0, n_slices: int = 20, seed: int = 7,
    telemetry: Any = None,
) -> DynamicTrace:
    """Diurnal load 20 % -> 80 % -> 20 % at a 70 % power cap."""
    diurnal = LoadTrace.diurnal(low=0.2, high=0.8, period=n_slices * 0.1)
    return _run(
        diurnal, 0.7, n_slices, "fig8a-varying-load", mix_index, seed,
        telemetry=telemetry,
    )


def run_fig8b(
    mix_index: int = 0, n_slices: int = 20, seed: int = 7,
    telemetry: Any = None,
) -> DynamicTrace:
    """Power budget step 90 % -> 60 % -> 90 % at constant 80 % load."""
    third = n_slices // 3
    cap_trace = [0.9] * third + [0.6] * third + [0.9] * (n_slices - 2 * third)
    return _run(
        LoadTrace.constant(0.8),
        0.9,
        n_slices,
        "fig8b-varying-budget",
        mix_index,
        seed,
        power_cap_trace=cap_trace,
        telemetry=telemetry,
    )


def run_fig8c(
    mix_index: int = 0, n_slices: int = 24, seed: int = 7,
    surge_load: float = 1.3, telemetry: Any = None,
) -> DynamicTrace:
    """Load surge past saturation forcing core relocation, then recovery.

    ``surge_load`` deliberately exceeds the knee (1.0): the service
    cannot meet QoS on its current core allocation at any
    configuration, so CuttleSys reclaims cores from the batch jobs one
    per timeslice (§VI-A) and yields them back once the surge passes.
    """
    surge = LoadTrace.steps(
        [(0.0, 0.2), (n_slices * 0.1 * 0.25, surge_load),
         (n_slices * 0.1 * 0.6, 0.2)]
    )
    return _run(
        surge, 0.7, n_slices, "fig8c-core-relocation", mix_index, seed,
        telemetry=telemetry,
    )


def _fig8_cell(
    scenario: str,
    mix_index: int,
    n_slices: Optional[int],
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One Fig. 8 scenario as a JSONable fleet unit.

    ``n_slices=None`` keeps each scenario's paper-matching default
    (20/20/24); the telemetry session rides inside the cell so the
    fleet merge sees per-unit logs, same as every other sharded study.
    """
    runners = {"a": run_fig8a, "b": run_fig8b, "c": run_fig8c}
    if scenario not in runners:
        raise ValueError(f"unknown fig8 scenario {scenario!r}")
    session = None
    if collect_telemetry:
        from repro.telemetry import Telemetry

        session = Telemetry()
    kwargs: Dict[str, Any] = {"mix_index": mix_index, "seed": seed}
    if n_slices is not None:
        kwargs["n_slices"] = n_slices
    trace = runners[scenario](telemetry=session, **kwargs)
    fields = asdict(trace)
    cell: Dict[str, Any] = {
        "scenario": scenario,
        "scenario_name": fields.pop("scenario"),
        **fields,
    }
    if session is not None:
        cell["telemetry"] = telemetry_records(session)
    return cell


def trace_from_cell(cell: Dict[str, Any]) -> DynamicTrace:
    """Rebuild a :class:`DynamicTrace` from one fleet cell."""
    return DynamicTrace(
        scenario=str(cell["scenario_name"]),
        loads=tuple(float(v) for v in cell["loads"]),
        p99_over_qos=tuple(float(v) for v in cell["p99_over_qos"]),
        batch_gmean_bips=tuple(
            float(v) for v in cell["batch_gmean_bips"]
        ),
        power_w=tuple(float(v) for v in cell["power_w"]),
        budget_w=tuple(float(v) for v in cell["budget_w"]),
        lc_configs=tuple(str(v) for v in cell["lc_configs"]),
        lc_cores=tuple(int(v) for v in cell["lc_cores"]),
    )


def fig8_units(
    scenarios: Sequence[str],
    mix_index: int,
    n_slices: Optional[int],
    seed: int,
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The dynamic study's fleet work units, one per scenario."""
    return [
        WorkUnit(
            unit_id=f"fig8/{scenario}/m{mix_index}",
            fn=_fig8_cell,
            kwargs={
                "scenario": scenario, "mix_index": mix_index,
                "n_slices": n_slices, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for scenario in scenarios
    ]


def run_fig8_grid(
    scenarios: Sequence[str] = SCENARIOS,
    mix_index: int = 0,
    n_slices: Optional[int] = None,
    seed: int = 7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional["LiveAggregator"] = None,
) -> Dict[str, DynamicTrace]:
    """All three dynamic scenarios as a sharded fleet grid.

    Returns ``{scenario: trace}`` in ``scenarios`` order; the fleet
    flags follow the same contract as
    :func:`repro.experiments.scalability.run_scalability`.
    """
    fleet = FleetRun(
        "fig8",
        fig8_units(
            scenarios, mix_index, n_slices, seed,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={
            "scenarios": list(scenarios), "mix_index": mix_index,
            "n_slices": n_slices,
        },
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    return {
        cell["scenario"]: trace_from_cell(cell)
        for cell in outcome.values()
    }


def render_fig8(trace: DynamicTrace) -> str:
    """Per-slice table of one dynamic scenario."""
    rows = []
    for i in range(trace.n_slices):
        rows.append(
            (
                i,
                f"{trace.loads[i]:.0%}",
                f"{trace.p99_over_qos[i]:.2f}",
                f"{trace.batch_gmean_bips[i]:.2f}",
                f"{trace.power_w[i]:.1f}/{trace.budget_w[i]:.1f}",
                trace.lc_configs[i],
                trace.lc_cores[i],
            )
        )
    return (
        f"== {trace.scenario} ==\n"
        + format_table(
            ["slice", "load", "p99/QoS", "batch gmean", "power/budget",
             "LC config", "LC cores"],
            rows,
        )
    )

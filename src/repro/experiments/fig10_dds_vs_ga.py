"""Fig. 10 — design-space exploration: DDS vs the genetic algorithm.

* **(a)** — on one frozen decision problem (true metric tables, fixed
  LC reservation), both explorers run with the same evaluation budget;
  the explored points are projected on the (power, 1/throughput) plane.
  DDS lands more points near the pareto front and finds a better final
  configuration.
* **(b)** — full CuttleSys runs with SGD inference paired with either
  explorer (SGD-DDS vs SGD-GA) across power caps; the paper reports up
  to 19 % higher throughput with DDS, widest at mid-range caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams, DDSSearch
from repro.core.ga import GAParams, GeneticSearch
from repro.core.matrices import latency_row, power_rows, throughput_rows
from repro.core.objective import SystemObjective
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.sim.coreconfig import N_JOINT_CONFIGS, JointConfig
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class ExplorationCloud:
    """Explored points of one search, plus its best point."""

    algorithm: str
    #: (power W, 1/throughput) per evaluated point.
    points: Tuple[Tuple[float, float], ...]
    best_power: float
    best_inv_throughput: float
    best_objective: float
    evaluations: int


@dataclass
class Fig10aResult:
    """Both clouds on the same decision problem."""

    dds: ExplorationCloud
    ga: ExplorationCloud
    power_budget: float


def _frozen_objective(mix_index: int, cap: float, seed: int):
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    reference = machine.reference_max_power()
    load = 0.8
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    latency = latency_row(machine.lc_service, machine.perf, load, 16)
    qos = machine.lc_service.qos_latency_s
    best_lc, best_lc_power = None, np.inf
    for i in range(N_JOINT_CONFIGS):
        if latency[i] <= qos:
            joint = JointConfig.from_index(i)
            watts = machine.true_lc_power(joint, load, 16)
            if watts < best_lc_power:
                best_lc, best_lc_power = joint, watts
    reserved = best_lc_power * 16 + machine.power.llc_power()
    objective = SystemObjective(
        bips=bips,
        power=power,
        max_power=reference * cap,
        max_ways=machine.params.llc_ways,
        reserved_power=reserved,
        reserved_ways=best_lc.cache_ways,
    )
    return objective, reference * cap


def run_fig10a(
    mix_index: int = 0,
    cap: float = 0.7,
    seed: int = 7,
    dds_params: DDSParams = DDSParams(),
    ga_params: GAParams = GAParams(),
) -> Fig10aResult:
    """Run both explorers on one frozen problem, recording every point."""
    objective, budget = _frozen_objective(mix_index, cap, seed)

    def cloud(algorithm: str, searcher, rng) -> ExplorationCloud:
        result = searcher.search(
            objective,
            n_dims=objective.n_jobs,
            n_confs=objective.n_confs,
            rng=rng,
            record_explored=True,
        )
        points = tuple(
            (
                objective.total_power(x),
                1.0 / max(objective.gmean_bips(x), 1e-9),
            )
            for x, _ in result.explored
        )
        return ExplorationCloud(
            algorithm=algorithm,
            points=points,
            best_power=objective.total_power(result.best_x),
            best_inv_throughput=1.0
            / max(objective.gmean_bips(result.best_x), 1e-9),
            best_objective=result.best_objective,
            evaluations=result.evaluations,
        )

    return Fig10aResult(
        dds=cloud("dds", DDSSearch(dds_params), np.random.default_rng(seed)),
        ga=cloud("ga", GeneticSearch(ga_params), np.random.default_rng(seed)),
        power_budget=budget,
    )


@dataclass
class Fig10bResult:
    """Relative throughput of SGD-DDS over SGD-GA per power cap."""

    caps: Tuple[float, ...]
    #: gmean batch BIPS averaged over slices and mixes, per explorer.
    dds_throughput: Dict[float, float] = field(default_factory=dict)
    ga_throughput: Dict[float, float] = field(default_factory=dict)

    def advantage(self, cap: float) -> float:
        """DDS throughput over GA throughput at one cap."""
        return self.dds_throughput[cap] / self.ga_throughput[cap]


def run_fig10b(
    mix_indices: Sequence[int] = (0, 25),
    caps: Sequence[float] = (0.9, 0.7, 0.5),
    n_slices: int = 8,
    seed: int = 7,
) -> Fig10bResult:
    """Full runs with DDS vs GA as CuttleSys's explorer."""
    result = Fig10bResult(caps=tuple(caps))
    mixes = paper_mixes()
    for cap in caps:
        per_explorer: Dict[str, List[float]] = {"dds": [], "ga": []}
        for mix_index in mix_indices:
            mix = mixes[mix_index]
            reference = reference_power_for_mix(mix, seed=seed)
            for explorer in ("dds", "ga"):
                machine = build_machine_for_mix(mix, seed=seed)
                config = ControllerConfig(explorer=explorer, seed=seed)
                policy = CuttleSysPolicy.for_machine(
                    machine, seed=seed, config=config
                )
                run = run_policy(
                    machine,
                    policy,
                    LoadTrace.constant(0.8),
                    power_cap_fraction=cap,
                    n_slices=n_slices,
                    max_power_w=reference,
                )
                series = run.gmean_throughput_series()
                per_explorer[explorer].append(float(np.mean(series)))
        result.dds_throughput[cap] = float(np.mean(per_explorer["dds"]))
        result.ga_throughput[cap] = float(np.mean(per_explorer["ga"]))
    return result


def render_fig10(a: Fig10aResult, b: Fig10bResult) -> str:
    """Text rendering of both panels."""
    lines = [
        "Fig. 10a — exploration on one frozen problem "
        f"(budget {a.power_budget:.1f} W)",
        format_table(
            ["algorithm", "evaluations", "best power (W)",
             "best 1/throughput", "best objective"],
            [
                (c.algorithm, c.evaluations, f"{c.best_power:.1f}",
                 f"{c.best_inv_throughput:.3f}", f"{c.best_objective:.3f}")
                for c in (a.dds, a.ga)
            ],
        ),
        "",
        "Fig. 10b — SGD-DDS vs SGD-GA throughput across caps",
        format_table(
            ["cap", "SGD-DDS", "SGD-GA", "DDS advantage"],
            [
                (
                    f"{cap:.0%}",
                    f"{b.dds_throughput[cap]:.3f}",
                    f"{b.ga_throughput[cap]:.3f}",
                    f"{b.advantage(cap):.2f}x",
                )
                for cap in b.caps
            ],
        ),
    ]
    return "\n".join(lines)

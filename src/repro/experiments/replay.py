"""Single-quantum provenance replay from a crash-safe snapshot.

``python -m repro replay`` is the determinism cross-check of the
decision-provenance flight recorder (``repro.telemetry.provenance``):
given the resume state a paused run wrote (``run --stop-after K
--save-state``) and the JSONL log of the *full* run, it re-executes the
run from the snapshot up to a chosen quantum and diffs the reproduced
provenance record byte-for-byte against the recorded one.

Provenance records carry only virtual-time quantities, so a mismatch
means the decision path itself diverged — a broken snapshot field, an
RNG-stream skew, or a nondeterministic code path — exactly the class of
bug the chaos harness otherwise needs a full byte-diff of two runs to
catch.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.experiments.harness import run_policy
from repro.telemetry import Telemetry
from repro.telemetry.provenance import provenance_key
from repro.workloads.loadgen import LoadTrace

__all__ = ["ReplayMismatch", "diff_provenance", "replay_quantum"]


class ReplayMismatch(RuntimeError):
    """Raised when a replay cannot produce a comparable record."""


def replay_quantum(
    machine: Any,
    policy: Any,
    trace: LoadTrace,
    resume_state: Dict[str, Any],
    quantum: int,
    power_cap_fraction: float = 0.7,
    max_power_w: Optional[float] = None,
    faults: Any = None,
) -> Dict[str, Any]:
    """Re-execute quanta up to ``quantum`` and return its provenance.

    ``machine``/``policy``/``trace`` must be freshly constructed with
    the same arguments as the snapshotted run (the snapshot carries
    only mutable state).  The replay resumes at the snapshot's
    ``next_slice`` and runs through ``quantum`` inclusive under a fresh
    telemetry session, then returns that quantum's provenance record.
    """
    next_slice = int(resume_state.get("next_slice", 0))
    if quantum < next_slice:
        raise ReplayMismatch(
            f"quantum {quantum} precedes the snapshot (resumes at "
            f"{next_slice}); re-pause earlier or pick a later quantum"
        )
    telemetry = Telemetry()
    run_policy(
        machine,
        policy,
        trace,
        power_cap_fraction=power_cap_fraction,
        n_slices=quantum + 1,
        max_power_w=max_power_w,
        telemetry=telemetry,
        faults=faults,
        resume_state=resume_state,
    )
    assert telemetry.provenance is not None
    record = telemetry.provenance.for_quantum(quantum)
    if record is None:
        raise ReplayMismatch(
            f"replay produced no provenance record for quantum {quantum}"
        )
    return record


def diff_provenance(
    recorded: Dict[str, Any], reproduced: Dict[str, Any]
) -> List[str]:
    """Human-readable field-level differences (empty = byte-identical).

    Byte identity is judged on :func:`provenance_key` (sorted-key JSON
    with the fleet ``unit`` tag stripped); the per-field lines exist to
    make a mismatch debuggable without eyeballing two JSON blobs.
    """
    if provenance_key(recorded) == provenance_key(reproduced):
        return []
    lines: List[str] = []
    keys = sorted(
        (set(recorded) | set(reproduced)) - {"unit"}
    )
    for key in keys:
        a = recorded.get(key)
        b = reproduced.get(key)
        if json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True):
            lines.append(f"  {key}: recorded={a!r} replayed={b!r}")
    if not lines:  # pragma: no cover - key set differs only via "unit"
        lines.append("  (records differ only in key order artefacts)")
    return lines

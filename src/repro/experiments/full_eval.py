"""One-shot full evaluation: regenerate every result into one report.

``run_full_evaluation`` executes each experiment at a configurable
scale and assembles a single markdown report mirroring the paper's
evaluation section plus this repo's extension studies.  Used by the
``python -m repro report`` CLI command.

Fleet sharding: sections are mutually independent experiments, so
``--jobs N`` shards at the section level.  Section producers are
closures (not picklable), so the fleet unit is the top-level
:func:`_section_cell`, which re-derives the producer from its title
inside the worker.  Section wall-clock times are measured wherever the
section ran; like the scalability study's ``decision_ms``, they sit
outside the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.fleet import FleetParams, FleetRun, WorkUnit
from repro.logs import get_logger
from repro.telemetry.tracer import Tracer

log = get_logger("experiments.full_eval")

#: Section wall-clock times come from one module-level tracer, so a
#: report run can also be exported as a trace if ever needed.
_tracer = Tracer()


@dataclass(frozen=True)
class SectionResult:
    """One experiment's rendered output and runtime."""

    title: str
    body: str
    seconds: float
    error: Optional[str] = None


def _section(title: str, producer: Callable[[], str]) -> SectionResult:
    with _tracer.span("section", category="report", title=title) as span:
        try:
            body = producer()
            error = None
        except Exception as exc:  # pragma: no cover - defensive reporting
            body = ""
            error = f"{type(exc).__name__}: {exc}"
            log.warning("section %r failed: %s", title, error)
    log.info("section %r took %.1f s", title, span.duration_s)
    return SectionResult(
        title=title,
        body=body,
        seconds=span.duration_s,
        error=error,
    )


def default_sections(n_slices: int = 8) -> List[Tuple[str, Callable[[], str]]]:
    """The (title, producer) list the full evaluation runs, in order."""

    def fig1() -> str:
        from repro.experiments.fig1_characterization import (
            render_fig1, run_fig1,
        )
        return render_fig1(run_fig1())

    def table2() -> str:
        from repro.experiments.table2_overheads import (
            render_table2, run_table2, run_training_set_sensitivity,
        )
        return render_table2(run_table2(), run_training_set_sensitivity())

    def fig5() -> str:
        from repro.experiments.fig5_accuracy import (
            render_fig5, run_fig5a, run_fig5b,
        )
        return render_fig5(run_fig5a(), run_fig5b())

    def fig5c() -> str:
        from repro.experiments.fig5c_powercaps import (
            render_fig5c, run_fig5c,
        )
        return render_fig5c(run_fig5c(n_slices=n_slices))

    def fig7() -> str:
        from repro.experiments.fig7_timeline import render_fig7, run_fig7
        return render_fig7(run_fig7(n_slices=n_slices))

    def fig8() -> str:
        from repro.experiments.fig8_dynamic import (
            render_fig8, run_fig8a, run_fig8b, run_fig8c,
        )
        return "\n\n".join(
            render_fig8(trace)
            for trace in (run_fig8a(), run_fig8b(), run_fig8c())
        )

    def fig9() -> str:
        from repro.experiments.fig9_sgd_vs_rbf import render_fig9, run_fig9
        return render_fig9(run_fig9())

    def fig10() -> str:
        from repro.experiments.fig10_dds_vs_ga import (
            render_fig10, run_fig10a, run_fig10b,
        )
        return render_fig10(
            run_fig10a(), run_fig10b(n_slices=n_slices)
        )

    def flicker() -> str:
        from repro.experiments.flicker_comparison import (
            render_flicker, run_flicker_qos, run_flicker_throughput,
        )
        return render_flicker(
            run_flicker_qos(), run_flicker_throughput(n_slices=n_slices)
        )

    def ablations() -> str:
        from repro.experiments.ablations import (
            ablate_guards, ablate_inference, ablate_variants,
            render_ablation,
        )
        parts = [
            render_ablation("SGD vs oracle inference",
                            ablate_inference(n_slices=n_slices)),
            render_ablation("QoS guardbands",
                            ablate_guards(n_slices=n_slices)),
            render_ablation("latency training variants",
                            ablate_variants(n_slices=n_slices)),
        ]
        return "\n\n".join(parts)

    def dvfs() -> str:
        from repro.experiments.dvfs_comparison import (
            render_dvfs_comparison, run_dvfs_comparison,
        )
        return (
            "leakage x1.0:\n"
            + render_dvfs_comparison(run_dvfs_comparison())
            + "\n\nleakage x2.5:\n"
            + render_dvfs_comparison(run_dvfs_comparison(leakage_scale=2.5))
        )

    def bandwidth() -> str:
        from repro.experiments.bandwidth_study import (
            render_bandwidth_study, run_bandwidth_study,
        )
        return render_bandwidth_study(run_bandwidth_study(n_slices=n_slices))

    def churn() -> str:
        from repro.experiments.churn_study import (
            render_churn_study, run_churn_study,
        )
        return render_churn_study(run_churn_study(n_slices=n_slices * 2))

    def cluster() -> str:
        from repro.experiments.cluster_study import (
            render_cluster_study, run_cluster_study,
        )
        return render_cluster_study(run_cluster_study(n_slices=n_slices * 2))

    def area() -> str:
        from repro.experiments.area_equivalence import (
            render_area_equivalence, run_area_equivalence,
        )
        return render_area_equivalence(run_area_equivalence(n_slices=n_slices))

    def multi_service() -> str:
        from repro.experiments.multi_service import (
            render_multi_service, run_multi_service,
        )
        return render_multi_service(run_multi_service(n_slices=n_slices * 2))

    def scalability() -> str:
        from repro.experiments.scalability import (
            render_scalability, run_scalability,
        )
        return render_scalability(run_scalability(n_slices=n_slices))

    def faults() -> str:
        from repro.experiments.fault_study import (
            render_fault_study, run_fault_study,
        )
        return render_fault_study(run_fault_study(n_slices=n_slices + 4))

    return [
        ("Fig. 1 — LC service characterisation", fig1),
        ("Table II — scheduling overheads", table2),
        ("Fig. 5(a)(b) — SGD reconstruction accuracy", fig5),
        ("Fig. 5(c) — relative work vs power cap", fig5c),
        ("Fig. 7 — per-timeslice instructions", fig7),
        ("Fig. 8 — dynamic behaviour", fig8),
        ("Fig. 9 — SGD vs RBF", fig9),
        ("Fig. 10 — DDS vs GA", fig10),
        ("§VIII-E — Flicker comparison", flicker),
        ("Extension — ablations", ablations),
        ("Extension — DVFS comparison", dvfs),
        ("Extension — bandwidth contention", bandwidth),
        ("Extension — job churn", churn),
        ("Extension — rack-level power brokering", cluster),
        ("Extension — equal-area comparison", area),
        ("Extension — multi-service colocation", multi_service),
        ("Extension — scalability", scalability),
        ("Extension — fault injection & graceful degradation", faults),
    ]


def _section_cell(title: str, n_slices: int) -> Dict[str, Any]:
    """One report section as a JSONable fleet unit.

    Re-derives the producer from ``title`` so the unit stays picklable
    (the section closures themselves are not).
    """
    for candidate, producer in default_sections(n_slices=n_slices):
        if candidate == title:
            result = _section(title, producer)
            return {
                "title": result.title,
                "body": result.body,
                "seconds": result.seconds,
                "error": result.error,
            }
    raise ValueError(f"no section titled {title!r}")


def _selected_sections(
    n_slices: int, only: Optional[Sequence[str]]
) -> List[Tuple[str, Callable[[], str]]]:
    sections = default_sections(n_slices=n_slices)
    if only is not None:
        wanted = [token.lower().replace(" ", "") for token in only]

        def matches(title: str) -> bool:
            compact = title.lower().replace(".", "").replace(" ", "")
            return any(token.replace(".", "") in compact for token in wanted)

        sections = [
            (title, fn) for title, fn in sections if matches(title)
        ]
        if not sections:
            raise ValueError(f"no sections match {list(only)!r}")
    return sections


def run_full_evaluation(
    n_slices: int = 8,
    only: Optional[Sequence[str]] = None,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    fleet_stats: Optional[Dict[str, Any]] = None,
) -> List[SectionResult]:
    """Run every (or a filtered subset of) experiment section.

    ``fleet_stats``, when given a dict, receives the run's execution
    tallies (retries, serial fallbacks) for :func:`render_report`'s
    fleet-execution section.
    """
    sections = _selected_sections(n_slices, only)
    if jobs <= 1 and checkpoint is None:
        # Fast path: no sharding/snapshot machinery for the plain run.
        if fleet_stats is not None:
            fleet_stats.update({
                "retries": 0,
                "serial_fallbacks": 0,
                "unit_attempts": {},
            })
        return [_section(title, fn) for title, fn in sections]
    fleet = FleetRun(
        "full_eval",
        [
            WorkUnit(
                unit_id=f"section/{title}",
                fn=_section_cell,
                kwargs={"title": title, "n_slices": n_slices},
            )
            for title, _ in sections
        ],
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=0,
        context={"n_slices": n_slices},
        telemetry=telemetry,
    )
    outcome = fleet.execute()
    if fleet_stats is not None:
        fleet_stats.update({
            "retries": outcome.retries,
            "serial_fallbacks": outcome.serial_fallbacks,
            "unit_attempts": outcome.unit_attempts(),
        })
    return [
        SectionResult(
            title=cell["title"], body=cell["body"],
            seconds=cell["seconds"], error=cell["error"],
        )
        for cell in outcome.values()
    ]


def render_report(
    results: Sequence[SectionResult],
    fleet_stats: Optional[Dict[str, Any]] = None,
) -> str:
    """Assemble the markdown report.

    ``fleet_stats`` appends a fleet-execution health section.  It
    deliberately carries only the tallies that are zero on a healthy
    run regardless of ``--jobs`` (worker-death retries and serial
    fallbacks), so the report stays byte-identical across job counts.
    """
    total = sum(r.seconds for r in results)
    lines = [
        "# CuttleSys reproduction — full evaluation report",
        "",
        f"{len(results)} sections, {total:.0f} s total. "
        "See EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
    ]
    for result in results:
        lines.append(f"## {result.title}")
        lines.append("")
        if result.error is not None:
            lines.append(f"**FAILED**: {result.error}")
        else:
            lines.append("```")
            lines.append(result.body)
            lines.append("```")
        lines.append("")
        lines.append(f"_({result.seconds:.1f} s)_")
        lines.append("")
    if fleet_stats is not None:
        lines.append("## Fleet execution")
        lines.append("")
        lines.append(
            f"worker retries (WorkerDied resubmissions): "
            f"{fleet_stats.get('retries', 0)}; "
            f"serial fallbacks: "
            f"{fleet_stats.get('serial_fallbacks', 0)}."
        )
        lines.append("")
        unit_attempts = fleet_stats.get("unit_attempts") or {}
        if unit_attempts:
            # Only rendered when some unit needed more than one
            # attempt, so healthy reports stay byte-identical.
            lines.append("Units needing more than one attempt:")
            lines.append("")
            for unit_id in sorted(unit_attempts):
                lines.append(
                    f"- {unit_id}: {unit_attempts[unit_id]} attempts"
                )
            lines.append("")
    return "\n".join(lines)

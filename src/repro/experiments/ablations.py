"""Ablation studies of CuttleSys's design choices (DESIGN.md hooks).

Each ablation removes or resizes one mechanism and measures the effect
on useful work, QoS, and the power budget:

* **inference** — SGD reconstruction vs perfect (oracle) inference:
  the gap is what the two-sample collaborative filter costs.
* **guards** — QoS guardbands off vs on: without them, exploratory LC
  configuration choices violate QoS.
* **variants** — historical service variants in the latency training
  set (0 vs default): fewer known-similar services degrade the LC
  configuration choice.
* **training size** — 8/16/24 offline-characterised batch apps,
  end-to-end (the §VIII-A2 study measured in throughput, not error).
* **penalty weight** — the soft power penalty of §VI-A: too low busts
  the budget, too high leaves throughput on the table.
* **dds budget** — DDS iterations vs solution quality (the maxIter
  trade-off discussed in §V/VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams, DDSSearch
from repro.core.matrices import power_rows, throughput_rows
from repro.core.objective import SystemObjective
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.sim.coreconfig import N_JOINT_CONFIGS
from repro.telemetry.live import LiveAggregator
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class AblationRow:
    """Outcome of one configuration of one ablation."""

    label: str
    batch_instructions_b: float
    qos_violations: int
    power_violations: int


def _run_cuttlesys(
    mix_index: int,
    cap: float,
    n_slices: int,
    seed: int,
    config: ControllerConfig,
    label: str,
    telemetry: Any = None,
    train_profiles: Optional[Sequence] = None,
) -> AblationRow:
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=seed, config=config, train_profiles=train_profiles
    )
    run = run_policy(
        machine, policy, LoadTrace.constant(0.8),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        telemetry=telemetry,
    )
    return AblationRow(
        label=label,
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        qos_violations=run.qos_violations(),
        power_violations=run.power_violations(),
    )


def ablate_inference(
    mix_index: int = 0, cap: float = 0.6, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """SGD inference vs the perfect-inference oracle."""
    sgd = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "cuttlesys (SGD inference)",
    )
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    oracle = OracleReconfigPolicy(seed=seed)
    run = run_policy(
        machine, oracle, LoadTrace.constant(0.8),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
    )
    return sgd, AblationRow(
        label="oracle inference",
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        qos_violations=run.qos_violations(),
        power_violations=run.power_violations(),
    )


def ablate_guards(
    mix_index: int = 0, cap: float = 0.7, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """QoS guardbands on (default) vs effectively off."""
    with_guards = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "guards on (default)",
    )
    no_guards = _run_cuttlesys(
        mix_index, cap, n_slices, seed,
        ControllerConfig(
            seed=seed,
            qos_guard_sparse=1e-6,
            qos_guard_medium=1e-6,
            qos_guard_dense=1e-6,
        ),
        "guards off",
    )
    return with_guards, no_guards


def ablate_variants(
    mix_index: int = 0, cap: float = 0.7, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """Historical latency variants (default 3/service) vs none."""
    with_variants = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "3 variants/service (default)",
    )
    without = _run_cuttlesys(
        mix_index, cap, n_slices, seed,
        ControllerConfig(seed=seed, latency_variants_per_service=0),
        "no variants",
    )
    return with_variants, without


def ablate_training_size(
    sizes: Sequence[int] = (8, 16, 24),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """End-to-end effect of the offline training-set size (§VIII-A2)."""
    rows = []
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    for size in sizes:
        train_names, _ = train_test_split(n_train=size)
        machine = build_machine_for_mix(mix, seed=seed)
        policy = CuttleSysPolicy.for_machine(
            machine,
            seed=seed,
            config=ControllerConfig(seed=seed),
            train_profiles=[batch_profile(n) for n in train_names],
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        rows.append(
            AblationRow(
                label=f"{size} training apps",
                batch_instructions_b=run.total_batch_instructions() / 1e9,
                qos_violations=run.qos_violations(),
                power_violations=run.power_violations(),
            )
        )
    return tuple(rows)


def ablate_penalty_weight(
    weights: Sequence[float] = (0.25, 2.0, 16.0),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """Soft power-penalty weight of the DDS objective (§VI-A).

    Exposed through a dedicated objective run because the controller
    fixes the weight: we re-run the frozen search of Fig. 10a per
    weight and report predicted feasibility + throughput.
    """
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    budget = machine.reference_max_power() * cap * 0.6  # batch share
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    rows = []
    for weight in weights:
        objective = SystemObjective(
            bips=bips,
            power=power,
            max_power=budget,
            max_ways=machine.params.llc_ways - 4.0,
            penalty_power=weight,
        )
        result = DDSSearch(DDSParams()).search(
            objective, n_dims=bips.shape[0], n_confs=N_JOINT_CONFIGS,
            rng=np.random.default_rng(seed),
        )
        x = result.best_x
        over = max(0.0, objective.total_power(x) - budget)
        rows.append(
            AblationRow(
                label=f"penalty={weight:g}",
                batch_instructions_b=float(
                    bips[np.arange(bips.shape[0]), x].sum()
                ),
                qos_violations=0,
                power_violations=int(over > budget * 0.01),
            )
        )
    return tuple(rows)


def ablate_transition_cost(
    transitions_s: Sequence[float] = (50e-6, 2e-3, 10e-3),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """Sensitivity to the core-reconfiguration transition cost.

    The paper treats quantum-boundary reconfiguration as free; AnyCore's
    RTL suggests tens of microseconds.  This ablation raises the cost to
    the milliseconds regime to check how much CuttleSys's configuration
    churn would hurt on slower hardware.
    """
    from repro.sim.machine import MachineParams

    rows = []
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    for transition in transitions_s:
        machine = build_machine_for_mix(
            mix, seed=seed,
            params=MachineParams(reconfig_transition_s=transition),
        )
        policy = CuttleSysPolicy.for_machine(
            machine, seed=seed, config=ControllerConfig(seed=seed)
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        rows.append(
            AblationRow(
                label=f"transition {transition * 1e3:g} ms",
                batch_instructions_b=run.total_batch_instructions() / 1e9,
                qos_violations=run.qos_violations(),
                power_violations=run.power_violations(),
            )
        )
    return tuple(rows)


def ablate_dds_budget(
    iterations: Sequence[int] = (5, 40, 120),
    mix_index: int = 0,
    cap: float = 0.6,
    seed: int = 7,
) -> Dict[int, float]:
    """DDS maxIter vs achieved objective on a frozen problem."""
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    budget = machine.reference_max_power() * cap * 0.6
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    objective = SystemObjective(
        bips=bips,
        power=power,
        max_power=budget,
        max_ways=machine.params.llc_ways - 4.0,
    )
    out = {}
    for max_iter in iterations:
        result = DDSSearch(DDSParams(max_iter=max_iter)).search(
            objective, n_dims=bips.shape[0], n_confs=N_JOINT_CONFIGS,
            rng=np.random.default_rng(seed),
        )
        out[max_iter] = result.best_objective
    return out


def render_ablation(title: str, rows: Sequence[AblationRow]) -> str:
    """Text table for one ablation."""
    return (
        f"== {title} ==\n"
        + format_table(
            ["variant", "batch instr (B)", "QoS viol.", "power viol."],
            [
                (r.label, f"{r.batch_instructions_b:.2f}",
                 r.qos_violations, r.power_violations)
                for r in rows
            ],
        )
    )


# ----------------------------------------------------------------------
# Fleet-sharded ablation matrix.
# ----------------------------------------------------------------------

#: The matrix's (ablation, variants) grid, in render order.  Every
#: (ablation, variant) pair is one independent simulation, so the whole
#: matrix shards as fleet work units (``repro experiment ablations
#: --jobs N --checkpoint ...``).
ABLATION_MATRIX: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("inference", ("sgd", "oracle")),
    ("guards", ("on", "off")),
    ("variants", ("default", "none")),
    ("training-size", ("8", "16", "24")),
    ("penalty-weight", ("0.25", "2", "16")),
    ("transition-cost", ("50us", "2ms", "10ms")),
    ("dds-budget", ("5", "40", "120")),
)

#: Per-ablation power cap, matching the standalone ablate_* defaults.
_ABLATION_CAPS: Dict[str, float] = {
    "inference": 0.6,
    "guards": 0.7,
    "variants": 0.7,
    "training-size": 0.6,
    "penalty-weight": 0.6,
    "transition-cost": 0.6,
    "dds-budget": 0.6,
}

_TRANSITION_SECONDS: Dict[str, float] = {
    "50us": 50e-6, "2ms": 2e-3, "10ms": 10e-3,
}


def _run_oracle(
    mix_index: int, cap: float, n_slices: int, seed: int, label: str,
    telemetry: Any = None,
) -> AblationRow:
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    run = run_policy(
        machine, OracleReconfigPolicy(seed=seed), LoadTrace.constant(0.8),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        telemetry=telemetry,
    )
    return AblationRow(
        label=label,
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        qos_violations=run.qos_violations(),
        power_violations=run.power_violations(),
    )


def _frozen_search_row(
    mix_index: int,
    cap: float,
    seed: int,
    label: str,
    penalty_weight: Optional[float] = None,
    max_iter: Optional[int] = None,
) -> AblationRow:
    """One frozen-problem DDS run (penalty-weight / dds-budget cells).

    For ``penalty_weight`` cells the row mirrors
    :func:`ablate_penalty_weight` (predicted instructions + feasibility);
    for ``max_iter`` cells ``batch_instructions_b`` carries the achieved
    *objective* of :func:`ablate_dds_budget` — the matrix keeps one row
    shape and the renderer labels the difference.
    """
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    budget = machine.reference_max_power() * cap * 0.6  # batch share
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    objective = SystemObjective(
        bips=bips,
        power=power,
        max_power=budget,
        max_ways=machine.params.llc_ways - 4.0,
        **(
            {"penalty_power": penalty_weight}
            if penalty_weight is not None else {}
        ),
    )
    params = (
        DDSParams(max_iter=max_iter) if max_iter is not None else DDSParams()
    )
    result = DDSSearch(params).search(
        objective, n_dims=bips.shape[0], n_confs=N_JOINT_CONFIGS,
        rng=np.random.default_rng(seed),
    )
    if max_iter is not None:
        return AblationRow(
            label=label,
            batch_instructions_b=result.best_objective,
            qos_violations=0,
            power_violations=0,
        )
    x = result.best_x
    over = max(0.0, objective.total_power(x) - budget)
    return AblationRow(
        label=label,
        batch_instructions_b=float(bips[np.arange(bips.shape[0]), x].sum()),
        qos_violations=0,
        power_violations=int(over > budget * 0.01),
    )


def _ablation_cell(
    ablation: str,
    variant: str,
    mix_index: int,
    n_slices: int,
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One (ablation, variant) simulation as a JSONable fleet unit."""
    cap = _ABLATION_CAPS[ablation]
    session = None
    if collect_telemetry:
        from repro.telemetry import Telemetry

        session = Telemetry()
    if ablation == "inference":
        if variant == "sgd":
            row = _run_cuttlesys(
                mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
                "cuttlesys (SGD inference)", telemetry=session,
            )
        else:
            row = _run_oracle(
                mix_index, cap, n_slices, seed, "oracle inference",
                telemetry=session,
            )
    elif ablation == "guards":
        config = (
            ControllerConfig(seed=seed) if variant == "on"
            else ControllerConfig(
                seed=seed,
                qos_guard_sparse=1e-6,
                qos_guard_medium=1e-6,
                qos_guard_dense=1e-6,
            )
        )
        label = "guards on (default)" if variant == "on" else "guards off"
        row = _run_cuttlesys(
            mix_index, cap, n_slices, seed, config, label, telemetry=session
        )
    elif ablation == "variants":
        config = (
            ControllerConfig(seed=seed) if variant == "default"
            else ControllerConfig(seed=seed, latency_variants_per_service=0)
        )
        label = (
            "3 variants/service (default)" if variant == "default"
            else "no variants"
        )
        row = _run_cuttlesys(
            mix_index, cap, n_slices, seed, config, label, telemetry=session
        )
    elif ablation == "training-size":
        size = int(variant)
        train_names, _ = train_test_split(n_train=size)
        row = _run_cuttlesys(
            mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
            f"{size} training apps", telemetry=session,
            train_profiles=[batch_profile(n) for n in train_names],
        )
    elif ablation == "penalty-weight":
        weight = float(variant)
        row = _frozen_search_row(
            mix_index, cap, seed, f"penalty={weight:g}",
            penalty_weight=weight,
        )
    elif ablation == "transition-cost":
        from repro.sim.machine import MachineParams

        transition = _TRANSITION_SECONDS[variant]
        mix = paper_mixes()[mix_index]
        reference = reference_power_for_mix(mix, seed=seed)
        machine = build_machine_for_mix(
            mix, seed=seed,
            params=MachineParams(reconfig_transition_s=transition),
        )
        policy = CuttleSysPolicy.for_machine(
            machine, seed=seed, config=ControllerConfig(seed=seed)
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=cap, n_slices=n_slices,
            max_power_w=reference, telemetry=session,
        )
        row = AblationRow(
            label=f"transition {transition * 1e3:g} ms",
            batch_instructions_b=run.total_batch_instructions() / 1e9,
            qos_violations=run.qos_violations(),
            power_violations=run.power_violations(),
        )
    elif ablation == "dds-budget":
        row = _frozen_search_row(
            mix_index, cap, seed, f"maxIter={int(variant)}",
            max_iter=int(variant),
        )
    else:
        raise ValueError(f"unknown ablation {ablation!r}")
    cell: Dict[str, Any] = {
        "ablation": ablation,
        "variant": variant,
        "label": row.label,
        "batch_instructions_b": row.batch_instructions_b,
        "qos_violations": row.qos_violations,
        "power_violations": row.power_violations,
    }
    if session is not None:
        cell["telemetry"] = telemetry_records(session)
    return cell


def ablation_units(
    mix_index: int,
    n_slices: int,
    seed: int,
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The matrix's fleet work units, one per (ablation, variant)."""
    return [
        WorkUnit(
            unit_id=f"ablate/{ablation}/{variant}",
            fn=_ablation_cell,
            kwargs={
                "ablation": ablation, "variant": variant,
                "mix_index": mix_index, "n_slices": n_slices, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for ablation, variants in ABLATION_MATRIX
        for variant in variants
    ]


def rows_from_cells(
    cells: Sequence[Dict[str, Any]],
) -> Dict[str, Tuple[AblationRow, ...]]:
    """Regroup matrix cells into per-ablation row tuples (matrix order)."""
    by_key = {(c["ablation"], c["variant"]): c for c in cells}
    out: Dict[str, Tuple[AblationRow, ...]] = {}
    for ablation, variants in ABLATION_MATRIX:
        rows = []
        for variant in variants:
            cell = by_key[(ablation, variant)]
            rows.append(AblationRow(
                label=str(cell["label"]),
                batch_instructions_b=float(cell["batch_instructions_b"]),
                qos_violations=int(cell["qos_violations"]),
                power_violations=int(cell["power_violations"]),
            ))
        out[ablation] = tuple(rows)
    return out


def run_ablation_matrix(
    mix_index: int = 0,
    n_slices: int = 10,
    seed: int = 7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional["LiveAggregator"] = None,
) -> Dict[str, Tuple[AblationRow, ...]]:
    """Every ablation of :data:`ABLATION_MATRIX` as one sharded grid.

    The fleet flags follow the same contract as
    :func:`repro.experiments.scalability.run_scalability`.
    """
    fleet = FleetRun(
        "ablations",
        ablation_units(
            mix_index, n_slices, seed,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={"mix_index": mix_index, "n_slices": n_slices},
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    return rows_from_cells(outcome.values())


def render_ablation_matrix(
    rows_by_ablation: Dict[str, Tuple[AblationRow, ...]],
) -> str:
    """All matrix tables, in :data:`ABLATION_MATRIX` order.

    ``dds-budget`` rows carry the achieved search *objective* in the
    instructions column, so that table gets its own heading.
    """
    titles = {
        "inference": "inference: SGD vs oracle",
        "guards": "QoS guardbands",
        "variants": "latency training variants",
        "training-size": "offline training-set size",
        "penalty-weight": "power-penalty weight (frozen search)",
        "transition-cost": "reconfiguration transition cost",
        "dds-budget": "DDS iteration budget (objective, frozen search)",
    }
    sections = []
    for ablation, _variants in ABLATION_MATRIX:
        rows = rows_by_ablation.get(ablation)
        if rows:
            sections.append(render_ablation(titles[ablation], rows))
    return "\n\n".join(sections)

"""Ablation studies of CuttleSys's design choices (DESIGN.md hooks).

Each ablation removes or resizes one mechanism and measures the effect
on useful work, QoS, and the power budget:

* **inference** — SGD reconstruction vs perfect (oracle) inference:
  the gap is what the two-sample collaborative filter costs.
* **guards** — QoS guardbands off vs on: without them, exploratory LC
  configuration choices violate QoS.
* **variants** — historical service variants in the latency training
  set (0 vs default): fewer known-similar services degrade the LC
  configuration choice.
* **training size** — 8/16/24 offline-characterised batch apps,
  end-to-end (the §VIII-A2 study measured in throughput, not error).
* **penalty weight** — the soft power penalty of §VI-A: too low busts
  the budget, too high leaves throughput on the table.
* **dds budget** — DDS iterations vs solution quality (the maxIter
  trade-off discussed in §V/VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.controller import ControllerConfig
from repro.core.dds import DDSParams, DDSSearch
from repro.core.matrices import power_rows, throughput_rows
from repro.core.objective import SystemObjective
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.sim.coreconfig import N_JOINT_CONFIGS
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class AblationRow:
    """Outcome of one configuration of one ablation."""

    label: str
    batch_instructions_b: float
    qos_violations: int
    power_violations: int


def _run_cuttlesys(
    mix_index: int,
    cap: float,
    n_slices: int,
    seed: int,
    config: ControllerConfig,
    label: str,
) -> AblationRow:
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=seed, config=config)
    run = run_policy(
        machine, policy, LoadTrace.constant(0.8),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
    )
    return AblationRow(
        label=label,
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        qos_violations=run.qos_violations(),
        power_violations=run.power_violations(),
    )


def ablate_inference(
    mix_index: int = 0, cap: float = 0.6, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """SGD inference vs the perfect-inference oracle."""
    sgd = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "cuttlesys (SGD inference)",
    )
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    machine = build_machine_for_mix(mix, seed=seed)
    oracle = OracleReconfigPolicy(seed=seed)
    run = run_policy(
        machine, oracle, LoadTrace.constant(0.8),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
    )
    return sgd, AblationRow(
        label="oracle inference",
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        qos_violations=run.qos_violations(),
        power_violations=run.power_violations(),
    )


def ablate_guards(
    mix_index: int = 0, cap: float = 0.7, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """QoS guardbands on (default) vs effectively off."""
    with_guards = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "guards on (default)",
    )
    no_guards = _run_cuttlesys(
        mix_index, cap, n_slices, seed,
        ControllerConfig(
            seed=seed,
            qos_guard_sparse=1e-6,
            qos_guard_medium=1e-6,
            qos_guard_dense=1e-6,
        ),
        "guards off",
    )
    return with_guards, no_guards


def ablate_variants(
    mix_index: int = 0, cap: float = 0.7, n_slices: int = 10, seed: int = 7
) -> Tuple[AblationRow, AblationRow]:
    """Historical latency variants (default 3/service) vs none."""
    with_variants = _run_cuttlesys(
        mix_index, cap, n_slices, seed, ControllerConfig(seed=seed),
        "3 variants/service (default)",
    )
    without = _run_cuttlesys(
        mix_index, cap, n_slices, seed,
        ControllerConfig(seed=seed, latency_variants_per_service=0),
        "no variants",
    )
    return with_variants, without


def ablate_training_size(
    sizes: Sequence[int] = (8, 16, 24),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """End-to-end effect of the offline training-set size (§VIII-A2)."""
    rows = []
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    for size in sizes:
        train_names, _ = train_test_split(n_train=size)
        machine = build_machine_for_mix(mix, seed=seed)
        policy = CuttleSysPolicy.for_machine(
            machine,
            seed=seed,
            config=ControllerConfig(seed=seed),
            train_profiles=[batch_profile(n) for n in train_names],
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        rows.append(
            AblationRow(
                label=f"{size} training apps",
                batch_instructions_b=run.total_batch_instructions() / 1e9,
                qos_violations=run.qos_violations(),
                power_violations=run.power_violations(),
            )
        )
    return tuple(rows)


def ablate_penalty_weight(
    weights: Sequence[float] = (0.25, 2.0, 16.0),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """Soft power-penalty weight of the DDS objective (§VI-A).

    Exposed through a dedicated objective run because the controller
    fixes the weight: we re-run the frozen search of Fig. 10a per
    weight and report predicted feasibility + throughput.
    """
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    budget = machine.reference_max_power() * cap * 0.6  # batch share
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    rows = []
    for weight in weights:
        objective = SystemObjective(
            bips=bips,
            power=power,
            max_power=budget,
            max_ways=machine.params.llc_ways - 4.0,
            penalty_power=weight,
        )
        result = DDSSearch(DDSParams()).search(
            objective, n_dims=bips.shape[0], n_confs=N_JOINT_CONFIGS,
            rng=np.random.default_rng(seed),
        )
        x = result.best_x
        over = max(0.0, objective.total_power(x) - budget)
        rows.append(
            AblationRow(
                label=f"penalty={weight:g}",
                batch_instructions_b=float(
                    bips[np.arange(bips.shape[0]), x].sum()
                ),
                qos_violations=0,
                power_violations=int(over > budget * 0.01),
            )
        )
    return tuple(rows)


def ablate_transition_cost(
    transitions_s: Sequence[float] = (50e-6, 2e-3, 10e-3),
    mix_index: int = 0,
    cap: float = 0.6,
    n_slices: int = 10,
    seed: int = 7,
) -> Tuple[AblationRow, ...]:
    """Sensitivity to the core-reconfiguration transition cost.

    The paper treats quantum-boundary reconfiguration as free; AnyCore's
    RTL suggests tens of microseconds.  This ablation raises the cost to
    the milliseconds regime to check how much CuttleSys's configuration
    churn would hurt on slower hardware.
    """
    from repro.sim.machine import MachineParams

    rows = []
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    for transition in transitions_s:
        machine = build_machine_for_mix(
            mix, seed=seed,
            params=MachineParams(reconfig_transition_s=transition),
        )
        policy = CuttleSysPolicy.for_machine(
            machine, seed=seed, config=ControllerConfig(seed=seed)
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(0.8),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        rows.append(
            AblationRow(
                label=f"transition {transition * 1e3:g} ms",
                batch_instructions_b=run.total_batch_instructions() / 1e9,
                qos_violations=run.qos_violations(),
                power_violations=run.power_violations(),
            )
        )
    return tuple(rows)


def ablate_dds_budget(
    iterations: Sequence[int] = (5, 40, 120),
    mix_index: int = 0,
    cap: float = 0.6,
    seed: int = 7,
) -> Dict[int, float]:
    """DDS maxIter vs achieved objective on a frozen problem."""
    mix = paper_mixes()[mix_index]
    machine = build_machine_for_mix(mix, seed=seed)
    budget = machine.reference_max_power() * cap * 0.6
    bips = throughput_rows(machine.batch_profiles, machine.perf)
    power = power_rows(machine.batch_profiles, machine.power)
    objective = SystemObjective(
        bips=bips,
        power=power,
        max_power=budget,
        max_ways=machine.params.llc_ways - 4.0,
    )
    out = {}
    for max_iter in iterations:
        result = DDSSearch(DDSParams(max_iter=max_iter)).search(
            objective, n_dims=bips.shape[0], n_confs=N_JOINT_CONFIGS,
            rng=np.random.default_rng(seed),
        )
        out[max_iter] = result.best_objective
    return out


def render_ablation(title: str, rows: Sequence[AblationRow]) -> str:
    """Text table for one ablation."""
    return (
        f"== {title} ==\n"
        + format_table(
            ["variant", "batch instr (B)", "QoS viol.", "power viol."],
            [
                (r.label, f"{r.batch_instructions_b:.2f}",
                 r.qos_violations, r.power_violations)
                for r in rows
            ],
        )
    )

"""Shared experiment harness: drive a policy against a machine.

The harness owns the decision-quantum loop of §IV-B: each 100 ms slice
it asks the policy for an assignment (the policy may profile the
machine first), executes the slice, feeds the measurements back, and
accounts the policy's scheduling overheads against batch throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logs import get_logger
from repro.sim.machine import (
    Machine,
    MachineParams,
    SliceMeasurement,
    measurement_from_state,
    measurement_state,
)
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.telemetry.live import current_emitter
from repro.telemetry.metrics import DecisionRecord
from repro.telemetry.tracer import tracer_of
from repro.workloads.batch import batch_profile
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import Mix

log = get_logger("experiments.harness")

#: Fractional slack on the power budget before a slice counts as a
#: power violation.  Measured chip power carries ``slice_noise``-level
#: measurement error (~2 % std, MachineParams), so excursions inside
#: this band are indistinguishable from sensor noise rather than real
#: budget breaches.  Shared by :meth:`PolicyRun.power_violations` and
#: the per-quantum telemetry counter so both report the same number.
POWER_TOLERANCE = 0.02


def build_machine_for_mix(
    mix: Mix,
    seed: int = 1,
    params: Optional[MachineParams] = None,
    reconfigurable: bool = True,
) -> Machine:
    """Instantiate the simulated 32-core machine for one paper mix.

    ``reconfigurable=False`` builds the fixed-core variant the gating
    and asymmetric baselines run on: no 18 % energy or 1.67 % frequency
    reconfigurability penalty (§VII).  The LC service objects (and
    hence QoS targets) are shared across both variants so comparisons
    are apples-to-apples.
    """
    params = params if params is not None else MachineParams()
    perf = PerformanceModel(reconfigurable=reconfigurable)
    power = PowerModel(reconfigurable=reconfigurable, llc_ways=params.llc_ways)
    return Machine(
        lc_service=lc_service(mix.lc_name),
        batch_profiles=[batch_profile(name) for name in mix.batch_names],
        params=params,
        perf=perf,
        power=power,
        seed=seed,
    )


def reference_power_for_mix(
    mix: Mix, seed: int = 1, params: Optional[MachineParams] = None
) -> float:
    """The mix's 100 % power budget (§VII-A), shared by every design.

    Computed on the reconfigurable machine and held constant across
    designs, as in the paper's fixed-power comparisons.
    """
    return build_machine_for_mix(mix, seed=seed, params=params).reference_max_power()


@dataclass
class PolicyRun:
    """Everything measured over one policy execution."""

    policy_name: str
    power_budget_w: float
    #: QoS target of the primary LC service (seconds).
    qos_s: float = 0.0
    #: QoS targets of the extra LC services, in service order.
    qos_extra_s: Tuple[float, ...] = ()
    measurements: List[SliceMeasurement] = field(default_factory=list)
    loads: List[float] = field(default_factory=list)
    budgets: List[float] = field(default_factory=list)
    overhead_fraction: float = 0.0
    #: (slice index, batch slot, new app name) per churn event.
    churn_events: List[tuple] = field(default_factory=list)
    #: Quanta where the policy raised and the harness served a fallback
    #: assignment instead of dying (see ``run_policy`` degradation).
    degraded_quanta: int = 0
    #: When ``run_policy(stop_after=k)`` paused the run at quantum ``k``,
    #: the JSONable state that resumes it (``resume_state=``); ``None``
    #: for completed runs.  Excluded from comparisons: two runs covering
    #: the same slices are equal whether or not one was paused later.
    resume_state: Optional[Dict[str, Any]] = field(
        default=None, compare=False, repr=False
    )

    @property
    def n_slices(self) -> int:
        """Number of decision quanta executed."""
        return len(self.measurements)

    def total_batch_instructions(self) -> float:
        """Useful batch work over the run, net of scheduling overheads.

        This is the §VII-B comparison metric: total instructions
        executed by batch applications over the same wall-clock time.
        """
        raw = sum(m.total_batch_instructions for m in self.measurements)
        return raw * (1.0 - self.overhead_fraction)

    def gmean_throughput_series(self) -> np.ndarray:
        """Per-slice geometric mean of active batch jobs' BIPS."""
        out = np.zeros(self.n_slices)
        for i, m in enumerate(self.measurements):
            active = m.batch_bips[m.batch_bips > 0]
            if active.size:
                out[i] = float(np.exp(np.mean(np.log(active))))
        return out

    def qos_violations(self) -> int:
        """Slices where any hosted service's p99 exceeded its QoS target."""
        count = 0
        for m in self.measurements:
            violated = m.lc_p99 > self.qos_s and m.assignment.lc_cores > 0
            for p99, qos in zip(m.extra_lc_p99, self.qos_extra_s):
                violated = violated or p99 > qos
            if violated:
                count += 1
        return count

    def power_violations(self, tolerance: float = POWER_TOLERANCE) -> int:
        """Slices whose measured power exceeded the budget (+tolerance).

        ``tolerance`` defaults to :data:`POWER_TOLERANCE` (2 %): the
        measurement-noise band within which an excursion cannot be told
        apart from sensor error.  Pass 0.0 to count every overshoot.
        """
        return sum(
            1
            for m, budget in zip(self.measurements, self.budgets)
            if m.total_power > budget * (1.0 + tolerance)
        )

    def worst_p99_ratio(self) -> float:
        """Max measured p99 over the run, as a multiple of QoS."""
        if not self.measurements:
            return 0.0
        return max(m.lc_p99 for m in self.measurements) / self.qos_s

    def to_csv(self, path) -> None:
        """Write one row per slice (for external plotting/analysis).

        Columns: slice index, load, budget W, measured power W, LC
        p99 s, QoS target s, LC cores, LC config, active batch jobs,
        batch instructions — plus, on multi-service machines, one
        ``lc<k>_p99_s`` / ``lc<k>_qos_s`` / ``lc<k>_cores`` triple per
        extra hosted service.
        """
        import csv

        n_extra = len(self.qos_extra_s)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            header = [
                "slice", "load", "budget_w", "power_w", "lc_p99_s",
                "qos_s", "lc_cores", "lc_config", "active_batch",
                "batch_instructions",
            ]
            for k in range(1, n_extra + 1):
                header.extend(
                    [f"lc{k}_p99_s", f"lc{k}_qos_s", f"lc{k}_cores"]
                )
            writer.writerow(header)
            for i, m in enumerate(self.measurements):
                a = m.assignment
                row = [
                    i,
                    f"{self.loads[i]:.4f}",
                    f"{self.budgets[i]:.3f}",
                    f"{m.total_power:.3f}",
                    f"{m.lc_p99:.6f}",
                    f"{self.qos_s:.6f}",
                    a.lc_cores,
                    a.lc_config.label if a.lc_config else "",
                    len(a.active_batch_indices),
                    f"{m.total_batch_instructions:.0f}",
                ]
                for k in range(n_extra):
                    p99 = (
                        m.extra_lc_p99[k] if k < len(m.extra_lc_p99) else 0.0
                    )
                    cores = (
                        a.extra_lc[k].cores if k < len(a.extra_lc) else 0
                    )
                    row.extend(
                        [
                            f"{p99:.6f}",
                            f"{self.qos_extra_s[k]:.6f}",
                            cores,
                        ]
                    )
                writer.writerow(row)

    def summary(self) -> str:
        """One-line human-readable digest."""
        instr = self.total_batch_instructions()
        return (
            f"{self.policy_name}: {self.n_slices} slices, "
            f"{instr / 1e9:.2f} B batch instructions, "
            f"{self.qos_violations()} QoS violations, "
            f"{self.power_violations()} power violations "
            f"(budget {self.power_budget_w:.1f} W)"
        )


def _fallback_assignment(machine: Machine):
    """Emergency posture when a policy dies with no usable history.

    QoS priority: the LC services get conservative wide allocations;
    every batch job is gated.  Zero batch throughput for the quantum,
    but the machine keeps serving queries and stays inside any sane
    power budget.
    """
    from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
    from repro.sim.machine import Assignment, LCAllocation

    conservative = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
    n_extra = len(machine.lc_services) - 1
    extra = tuple(
        LCAllocation(cores=2, config=conservative) for _ in range(n_extra)
    )
    lc_cores = max(1, min(16, machine.params.n_cores - 2 * n_extra - 1))
    return Assignment(
        lc_cores=lc_cores,
        lc_config=conservative,
        batch_configs=(None,) * len(machine.batch_profiles),
        extra_lc=extra,
    )


def _degraded_assignment(policy, run: "PolicyRun", machine: Machine):
    """Best available stand-in when the policy raised this quantum.

    Preference order: the policy's own last-known-good cache (hardened
    CuttleSys exposes ``last_good_assignment``), then the most recent
    assignment that actually ran, then the gated-batch fallback.
    """
    last_good = getattr(policy, "last_good_assignment", None)
    if last_good is None and run.measurements:
        last_good = run.measurements[-1].assignment
    if last_good is None:
        last_good = _fallback_assignment(machine)
    return last_good


def _record_decision(telemetry, quantum: int, policy,
                     measurement: SliceMeasurement) -> None:
    """Pair the policy's prediction with the slice's measurements.

    Works for any :class:`Policy`: policies without a
    ``last_prediction`` (the baselines) contribute measured-only
    records whose predicted side is NaN, which the error histograms
    simply skip.
    """
    prediction = getattr(policy, "last_prediction", None)
    n_jobs = len(measurement.batch_bips)
    measured_p99 = (measurement.lc_p99, *measurement.extra_lc_p99)
    if prediction is None:
        predicted_bips: Tuple[float, ...] = (math.nan,) * n_jobs
        predicted_p99: Tuple[float, ...] = (math.nan,) * len(measured_p99)
        predicted_power = math.nan
    else:
        predicted_bips = tuple(prediction.bips)
        predicted_p99 = tuple(prediction.p99_s)
        predicted_power = prediction.power_w
    telemetry.record_decision(DecisionRecord(
        quantum=quantum,
        predicted_bips=predicted_bips,
        measured_bips=tuple(float(b) for b in measurement.batch_bips),
        predicted_p99_s=predicted_p99,
        measured_p99_s=measured_p99,
        predicted_power_w=predicted_power,
        measured_power_w=measurement.total_power,
    ))


def _capture_harness_state(
    machine: Machine,
    policy,
    run: PolicyRun,
    next_slice: int,
    load_estimate: float,
    extra_estimates: Tuple[float, ...],
    churn_rng: np.random.Generator,
    faults,
) -> Dict[str, Any]:
    """Everything needed to resume the quantum loop at ``next_slice``.

    The machine may be a :class:`~repro.faults.injector.FaultyMachine`;
    ``snapshot`` delegates to the wrapped machine, and the injector's
    own state travels under ``"faults"``.
    """
    return {
        "version": 1,
        "next_slice": next_slice,
        "load_estimate": load_estimate,
        "extra_estimates": list(extra_estimates),
        "churn_rng": churn_rng.bit_generator.state,
        "machine": machine.snapshot(),
        "policy": policy.snapshot(),
        "faults": faults.snapshot() if faults is not None else None,
        "run": {
            "degraded_quanta": run.degraded_quanta,
            "churn_events": [list(event) for event in run.churn_events],
            "loads": list(run.loads),
            "budgets": list(run.budgets),
            "measurements": [
                measurement_state(m) for m in run.measurements
            ],
        },
    }


def _restore_harness_state(
    state: Dict[str, Any],
    machine: Machine,
    policy,
    run: PolicyRun,
    churn_rng: np.random.Generator,
    faults,
) -> Tuple[int, float, Tuple[float, ...]]:
    """Inverse of :func:`_capture_harness_state`.

    Returns ``(next_slice, load_estimate, extra_estimates)``.
    """
    if state.get("version") != 1:
        raise ValueError(
            f"unsupported harness resume-state version: "
            f"{state.get('version')!r}"
        )
    machine.restore(state["machine"])
    policy.restore(state["policy"])
    if state["faults"] is not None:
        if faults is None:
            raise ValueError(
                "resume state carries fault-injector state but no "
                "injector was passed"
            )
        faults.restore(state["faults"])
    churn_rng.bit_generator.state = state["churn_rng"]
    saved = state["run"]
    run.degraded_quanta = int(saved["degraded_quanta"])
    run.churn_events = [tuple(event) for event in saved["churn_events"]]
    run.loads = [float(v) for v in saved["loads"]]
    run.budgets = [float(v) for v in saved["budgets"]]
    run.measurements = [
        measurement_from_state(m) for m in saved["measurements"]
    ]
    return (
        int(state["next_slice"]),
        float(state["load_estimate"]),
        tuple(float(v) for v in state["extra_estimates"]),
    )


class QuantumStepper:
    """Resumable stepwise iterator over the decision-quantum loop.

    One :meth:`step` call executes exactly one decision quantum —
    churn, budget, decide, run_slice, observe, telemetry — against the
    machine/policy pair the stepper was built with.  :func:`run_policy`
    is a thin loop over this class; long-lived callers (the
    ``repro.server`` daemon) instead hold a stepper and tick it one
    quantum at a time, interleaving job submissions between steps.

    ``snapshot``/``restore`` wrap the harness's crash-safe state
    capture: a stepper restored from a snapshot continues the quantum
    sequence byte-identically to one that was never paused.
    """

    def __init__(
        self,
        machine: Machine,
        policy,
        trace: LoadTrace,
        power_cap_fraction: float = 0.7,
        n_slices: int = 10,
        power_cap_trace: Optional[Sequence[float]] = None,
        max_power_w: Optional[float] = None,
        churn_period: Optional[int] = None,
        churn_pool: Optional[Sequence] = None,
        churn_seed: int = 0,
        extra_traces: Sequence[LoadTrace] = (),
        telemetry=None,
        faults=None,
        on_policy_error: str = "degrade",
    ) -> None:
        if n_slices <= 0:
            raise ValueError("n_slices must be positive")
        if not 0 < power_cap_fraction <= 1.0:
            raise ValueError("power_cap_fraction must be in (0, 1]")
        if on_policy_error not in ("degrade", "raise"):
            raise ValueError(
                f"on_policy_error must be 'degrade' or 'raise', "
                f"got {on_policy_error!r}"
            )
        if churn_period is not None:
            if churn_period <= 0:
                raise ValueError("churn_period must be positive")
            if not churn_pool:
                raise ValueError(
                    "churn_period requires a non-empty churn_pool"
                )
        if faults is not None:
            machine = faults.wrap(machine)
            if telemetry is not None:
                faults.attach_telemetry(telemetry)
        self.machine = machine
        self.policy = policy
        self.trace = trace
        self.power_cap_fraction = power_cap_fraction
        self.n_slices = n_slices
        self.power_cap_trace = power_cap_trace
        self.churn_period = churn_period
        self.churn_pool = churn_pool
        self.extra_traces = tuple(extra_traces)
        self.telemetry = telemetry
        self.faults = faults
        self.on_policy_error = on_policy_error
        self.reference = (
            max_power_w if max_power_w is not None
            else machine.reference_max_power()
        )
        self.run = PolicyRun(
            policy_name=policy.name,
            power_budget_w=self.reference * power_cap_fraction,
            qos_s=machine.lc_service.qos_latency_s,
            qos_extra_s=tuple(
                s.qos_latency_s for s in machine.lc_services[1:]
            ),
            overhead_fraction=policy.overhead_fraction,
        )
        self.tracer = tracer_of(telemetry)
        # A disabled session (Telemetry(enabled=False)) still attaches —
        # instrumented callees see the null tracer/registry — but the
        # harness skips its own per-quantum accounting entirely, keeping
        # the telemetry-off hot loop at near-zero overhead (guarded by
        # the `telemetry.overhead_disabled` bench).
        self.session_on = (
            telemetry is not None and getattr(telemetry, "enabled", True)
        )
        self.auditor = (
            getattr(telemetry, "auditor", None) if self.session_on
            else None
        )
        if telemetry is not None:
            machine.attach_telemetry(telemetry)
            attach = getattr(policy, "attach_telemetry", None)
            if attach is not None:
                attach(telemetry)
            log.info(
                "running %s for %d slices (budget %.1f W, telemetry %s)",
                policy.name, n_slices, self.run.power_budget_w,
                "on" if self.session_on else "off",
            )
        self.churn_rng = np.random.default_rng(churn_seed)
        self.load_estimate = trace.load_at(0.0)
        self.extra_estimates = tuple(
            t.load_at(0.0) for t in self.extra_traces
        )
        self.next_slice = 0

    @property
    def done(self) -> bool:
        """True once every quantum has executed."""
        return self.next_slice >= self.n_slices

    def snapshot(self) -> Dict[str, Any]:
        """JSONable state resuming the loop at ``next_slice``.

        Covers ``next_slice``, ``load_estimate`` and
        ``extra_estimates`` alongside the machine/policy/fault-injector
        snapshots and the accumulated ``run`` measurements.
        """
        return _capture_harness_state(
            self.machine, self.policy, self.run, self.next_slice,
            self.load_estimate, self.extra_estimates, self.churn_rng,
            self.faults,
        )

    def restore(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot` (same construction arguments)."""
        (
            self.next_slice,
            self.load_estimate,
            self.extra_estimates,
        ) = _restore_harness_state(
            state, self.machine, self.policy, self.run, self.churn_rng,
            self.faults,
        )

    def step(self) -> SliceMeasurement:
        """Execute exactly one decision quantum; returns its measurement."""
        if self.done:
            raise RuntimeError(
                f"all {self.n_slices} quanta already executed"
            )
        machine = self.machine
        policy = self.policy
        telemetry = self.telemetry
        tracer = self.tracer
        session_on = self.session_on
        auditor = self.auditor
        faults = self.faults
        run = self.run
        i = self.next_slice
        with tracer.span("quantum", category="harness", index=i):
            if session_on:
                recorder = getattr(telemetry, "provenance", None)
                if recorder is not None:
                    # The flight recorder indexes records by harness
                    # quantum, which survives pause/resume (the loop
                    # restarts at the saved ``next_slice``).
                    recorder.begin_quantum(i)
            if faults is not None:
                faults.begin_quantum(i)
                for slot in faults.crash_events(
                    len(machine.batch_profiles)
                ):
                    # Crash/respawn: same application, fresh process —
                    # phase state resets and the policy re-profiles it.
                    respawn = machine.batch_profiles[slot]
                    machine.replace_batch_job(slot, respawn)
                    notify = getattr(policy, "on_job_replaced", None)
                    if notify is not None:
                        notify(slot)
                    run.churn_events.append((i, slot, respawn.name))
                    if session_on:
                        telemetry.counter("harness.job_churn").inc()
                        tracer.instant(
                            "batch_crash", category="faults", slot=slot,
                        )
                    log.info(
                        "slice %d: batch job %d crashed and respawned",
                        i, slot,
                    )
            if (
                self.churn_period is not None
                and i > 0
                and i % self.churn_period == 0
            ):
                slot = int(
                    self.churn_rng.integers(len(machine.batch_profiles))
                )
                newcomer = self.churn_pool[
                    int(self.churn_rng.integers(len(self.churn_pool)))
                ]
                machine.replace_batch_job(slot, newcomer)
                notify = getattr(policy, "on_job_replaced", None)
                if notify is not None:
                    notify(slot)
                run.churn_events.append((i, slot, newcomer.name))
                if session_on:
                    telemetry.counter("harness.job_churn").inc()
                    tracer.instant(
                        "job_churn", category="harness",
                        slot=slot, app=newcomer.name,
                    )
                log.debug(
                    "slice %d: batch slot %d replaced by %s",
                    i, slot, newcomer.name,
                )
            fraction = (
                self.power_cap_trace[i]
                if self.power_cap_trace is not None
                else self.power_cap_fraction
            )
            budget = self.reference * fraction
            if faults is not None:
                budget = faults.effective_budget(budget)
            degraded = False
            with tracer.span("decide", category="harness"):
                try:
                    if self.extra_traces:
                        assignment = policy.decide(
                            machine, self.load_estimate, budget,
                            extra_loads=self.extra_estimates,
                        )
                    else:
                        assignment = policy.decide(
                            machine, self.load_estimate, budget
                        )
                except Exception as exc:
                    if self.on_policy_error == "raise":
                        # Callers (the fault study) recover completed
                        # slices from the aborted run via this attribute.
                        exc.partial_run = run
                        raise
                    degraded = True
                    assignment = _degraded_assignment(policy, run, machine)
                    run.degraded_quanta += 1
                    if session_on:
                        telemetry.counter("harness.degraded_quanta").inc()
                        telemetry.counter(
                            "faults.recovered.degraded_quantum"
                        ).inc()
                        tracer.instant(
                            "degraded_quantum", category="faults",
                            error=type(exc).__name__,
                        )
                    log.warning(
                        "slice %d: policy %s raised %s: %s; serving "
                        "last-known-good assignment",
                        i, policy.name, type(exc).__name__, exc,
                    )
            if auditor is not None and not degraded:
                # Before run_slice: batch phases advance there, and the
                # audit must score the oracle the decision faced.
                auditor.audit_decision(policy, machine, i)
            actual_load = self.trace.load_at(machine.time_s)
            if faults is not None:
                actual_load = faults.effective_load(actual_load)
            actual_extras = tuple(
                t.load_at(machine.time_s) for t in self.extra_traces
            )
            measurement = machine.run_slice(
                assignment, actual_load, extra_loads=actual_extras
            )
            with tracer.span("observe", category="harness"):
                try:
                    policy.observe(measurement)
                except Exception as exc:
                    if self.on_policy_error == "raise":
                        exc.partial_run = run
                        raise
                    if not degraded:
                        degraded = True
                        run.degraded_quanta += 1
                        if session_on:
                            telemetry.counter(
                                "harness.degraded_quanta"
                            ).inc()
                            telemetry.counter(
                                "faults.recovered.degraded_quantum"
                            ).inc()
                    log.warning(
                        "slice %d: policy %s observe raised %s: %s; "
                        "measurement dropped",
                        i, policy.name, type(exc).__name__, exc,
                    )
            run.measurements.append(measurement)
            run.loads.append(actual_load)
            run.budgets.append(budget)
            if session_on:
                # A degraded quantum has no fresh prediction; record a
                # measured-only entry rather than pairing the slice
                # with a stale one.
                _record_decision(
                    telemetry, i, None if degraded else policy, measurement
                )
                metrics = telemetry.metrics
                metrics.counter("harness.reconfigurations").inc(
                    measurement.reconfigurations
                )
                qos_violated = (
                    measurement.lc_p99 > run.qos_s
                    and assignment.lc_cores > 0
                ) or any(
                    p99 > qos
                    for p99, qos in zip(
                        measurement.extra_lc_p99, run.qos_extra_s
                    )
                )
                if qos_violated:
                    metrics.counter("harness.qos_violations").inc()
                    log.info(
                        "slice %d: QoS violated (p99 %.2f ms, target "
                        "%.2f ms)", i, measurement.lc_p99 * 1e3,
                        run.qos_s * 1e3,
                    )
                power_violated = (
                    measurement.total_power
                    > budget * (1.0 + POWER_TOLERANCE)
                )
                if power_violated:
                    metrics.counter("harness.power_violations").inc()
                live = current_emitter()
                if live is not None:
                    # Streaming fleet run: push this quantum's outcome
                    # through the bounded event bus (lossy, non-
                    # blocking — see repro.telemetry.live).
                    prediction = (
                        None if degraded
                        else getattr(policy, "last_prediction", None)
                    )
                    live.emit(
                        "quantum",
                        index=i,
                        lc_p99_ms=measurement.lc_p99 * 1e3,
                        power_w=measurement.total_power,
                        budget_w=budget,
                        qos_violated=bool(qos_violated),
                        power_violated=power_violated,
                        predicted_power_w=getattr(
                            prediction, "power_w", None
                        ),
                    )
                metrics.gauge("harness.power_w").set(
                    measurement.total_power
                )
                metrics.gauge("harness.lc_load").set(actual_load)
                metrics.histogram("slice.lc_p99_ms").observe(
                    measurement.lc_p99 * 1e3
                )
                if auditor is not None:
                    auditor.audit_measurement(
                        machine, measurement, i, run.qos_s,
                        run.qos_extra_s,
                        policy=None if degraded else policy,
                    )
            self.load_estimate = actual_load
            self.extra_estimates = actual_extras
        self.next_slice = i + 1
        return measurement


def run_policy(
    machine: Machine,
    policy,
    trace: LoadTrace,
    power_cap_fraction: float = 0.7,
    n_slices: int = 10,
    power_cap_trace: Optional[Sequence[float]] = None,
    max_power_w: Optional[float] = None,
    churn_period: Optional[int] = None,
    churn_pool: Optional[Sequence] = None,
    churn_seed: int = 0,
    extra_traces: Sequence[LoadTrace] = (),
    telemetry=None,
    faults=None,
    on_policy_error: str = "degrade",
    stop_after: Optional[int] = None,
    resume_state: Optional[Dict[str, Any]] = None,
) -> PolicyRun:
    """Drive ``policy`` on ``machine`` for ``n_slices`` decision quanta.

    ``power_cap_fraction`` scales :meth:`Machine.reference_max_power`;
    ``power_cap_trace`` (one fraction per slice) overrides it for the
    varying-budget experiments (Fig. 8b).  The policy sees the *previous*
    slice's load as its estimate — decisions react one quantum late,
    exactly as in the paper (§VIII-D1).

    Job churn: with ``churn_period`` set, every that-many slices one
    random batch job completes and a fresh application drawn from
    ``churn_pool`` takes its core; policies exposing ``on_job_replaced``
    (CuttleSys) are notified so they re-profile the newcomer.

    Multi-service machines take one :class:`LoadTrace` per extra LC
    service in ``extra_traces``; the policy's ``decide`` must accept an
    ``extra_loads`` keyword (CuttleSys does).

    ``telemetry`` takes a :class:`repro.telemetry.Telemetry` session:
    the harness emits nested ``quantum`` > ``decide``/``observe`` spans
    (policy and machine phases nest inside), records one
    predicted-vs-measured :class:`DecisionRecord` per quantum, and
    counts QoS/power violations, reconfigurations and job churn.  Any
    :class:`Policy` benefits; policies exposing ``attach_telemetry``
    (CuttleSys) additionally emit their internal phase spans.

    Fault injection and graceful degradation (docs/robustness.md):
    ``faults`` takes a :class:`repro.faults.FaultInjector`; the harness
    wraps the machine so profiling samples, measurements and requested
    reconfigurations pass the injector, and consults it each quantum
    for power-cap drops, load spikes and batch-job crashes.
    ``on_policy_error`` controls what a policy exception costs: the
    default ``"degrade"`` records a degraded quantum (telemetry
    counter ``harness.degraded_quanta``), serves the policy's last-known-good
    assignment (or a gated-batch fallback), and keeps running;
    ``"raise"`` propagates, aborting the run — the unhardened arm of
    the fault study.

    Crash-safe pause/resume (docs/robustness.md): ``stop_after=k``
    executes quanta ``0..k-1``, captures the full loop state (machine,
    policy, fault injector, churn RNG, accumulated measurements) in the
    returned run's :attr:`PolicyRun.resume_state`, and returns early.
    Passing that dict back via ``resume_state=`` — with the *same*
    machine/policy/trace arguments — continues at quantum ``k``; the
    completed resumed run is byte-identical to an uninterrupted one.
    Both require a policy exposing ``snapshot``/``restore``
    (:class:`repro.core.runtime.CuttleSysPolicy` does).
    """
    if stop_after is not None and stop_after <= 0:
        raise ValueError("stop_after must be positive")
    if stop_after is not None or resume_state is not None:
        if getattr(policy, "snapshot", None) is None or (
            getattr(policy, "restore", None) is None
        ):
            raise ValueError(
                f"policy {policy.name!r} does not support "
                f"snapshot/restore; stop_after/resume_state need both"
            )
    stepper = QuantumStepper(
        machine, policy, trace,
        power_cap_fraction=power_cap_fraction,
        n_slices=n_slices,
        power_cap_trace=power_cap_trace,
        max_power_w=max_power_w,
        churn_period=churn_period,
        churn_pool=churn_pool,
        churn_seed=churn_seed,
        extra_traces=extra_traces,
        telemetry=telemetry,
        faults=faults,
        on_policy_error=on_policy_error,
    )
    if resume_state is not None:
        stepper.restore(resume_state)
        log.info(
            "resuming %s at quantum %d/%d",
            policy.name, stepper.next_slice, n_slices,
        )
    while not stepper.done:
        stepper.step()
        if (
            stop_after is not None
            and stepper.next_slice >= stop_after
            and not stepper.done
        ):
            stepper.run.resume_state = stepper.snapshot()
            log.info(
                "pausing %s after quantum %d/%d (resume state captured)",
                policy.name, stepper.next_slice, n_slices,
            )
            break
    return stepper.run

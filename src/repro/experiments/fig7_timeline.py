"""Fig. 7 — instructions executed per timeslice, per scheme.

One mix at a 70 % power cap over 1 s (ten 100 ms slices): core-level
gating executes nothing on the cores it turned off, the oracle
asymmetric multicore keeps all cores active but runs many jobs on small
cores, and CuttleSys keeps all cores active with parts of each core
gated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


from repro.baselines import AsymmetricOraclePolicy, CoreGatingPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes


@dataclass(frozen=True)
class TimelineResult:
    """Per-slice instructions (billions) and active-core counts."""

    policy: str
    instructions_b: Tuple[float, ...]
    active_batch_cores: Tuple[int, ...]


def run_fig7(
    mix_index: int = 0,
    cap: float = 0.7,
    n_slices: int = 10,
    load: float = 0.8,
    seed: int = 7,
) -> Dict[str, TimelineResult]:
    """Per-slice instruction timelines for the three schemes."""
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    trace = LoadTrace.constant(load)
    out: Dict[str, TimelineResult] = {}
    for name, factory, reconfigurable in (
        ("core-gating", lambda m: CoreGatingPolicy(way_partition=True), False),
        ("asymm-oracle", lambda m: AsymmetricOraclePolicy(), False),
        ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=seed), True),
    ):
        machine = build_machine_for_mix(
            mix, seed=seed, reconfigurable=reconfigurable
        )
        policy = factory(machine)
        run = run_policy(
            machine,
            policy,
            trace,
            power_cap_fraction=cap,
            n_slices=n_slices,
            max_power_w=reference,
        )
        instructions = tuple(
            float(m.total_batch_instructions) / 1e9 for m in run.measurements
        )
        active = tuple(
            len(m.assignment.active_batch_indices) for m in run.measurements
        )
        out[name] = TimelineResult(
            policy=name, instructions_b=instructions, active_batch_cores=active
        )
    return out


def render_fig7(results: Dict[str, TimelineResult]) -> str:
    """Text rendering: one row per slice, one column pair per scheme."""
    n_slices = len(next(iter(results.values())).instructions_b)
    headers = ["slice"]
    for name in results:
        headers += [f"{name} (B instr)", f"{name} (active)"]
    rows = []
    for i in range(n_slices):
        row = [str(i)]
        for res in results.values():
            row += [f"{res.instructions_b[i]:.2f}", str(res.active_batch_cores[i])]
        rows.append(row)
    totals = ["total"] + sum(
        (
            [f"{sum(res.instructions_b):.2f}", "-"]
            for res in results.values()
        ),
        [],
    )
    rows.append(totals)
    return format_table(headers, rows)

"""Table II — scheduling overheads, plus the §VIII-A2 sensitivity study.

The paper reports per-quantum overheads of 2 x 1 ms profiling, 4.8 ms
for the three parallel SGD reconstructions, and 1.3 ms for the DDS
search.  Here the SGD and DDS numbers are *measured* on this
implementation (wall-clock of a realistic 32-row reconstruction and a
16-dimension search); profiling is a fixed simulated cost.

The training-set-size sensitivity reproduces §VIII-A2: more offline-
characterised applications lower the reconstruction error but raise its
cost (the paper: 8 apps -> 20 % error, 16 -> <10 %, 24 -> 8 %).

Timing comes from the telemetry tracer (``sgd.reconstruct`` and
``dds.search`` spans), so these tables measure through the same path
as any exported run trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.dds import DDSParams, DDSSearch
from repro.core.matrices import ObservedMatrix, throughput_rows
from repro.core.objective import SystemObjective
from repro.core.sgd import PQReconstructor, SGDParams
from repro.experiments.reporting import format_table, relative_error_percent
from repro.sim.coreconfig import CoreConfig, JointConfig, N_JOINT_CONFIGS
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.telemetry.tracer import Tracer
from repro.workloads.batch import SPEC_APPS, batch_profile, train_test_split

HI = JointConfig(CoreConfig.widest(), 1.0)
LO = JointConfig(CoreConfig.narrowest(), 1.0)


@dataclass(frozen=True)
class OverheadResult:
    """Measured per-quantum overheads (milliseconds)."""

    profiling_ms: float
    sgd_ms: float
    dds_ms: float

    @property
    def total_ms(self) -> float:
        """Total per-quantum scheduling cost."""
        return self.profiling_ms + self.sgd_ms + self.dds_ms


@dataclass(frozen=True)
class TrainingSetSensitivity:
    """Median absolute error and SGD time per training-set size."""

    sizes: Tuple[int, ...]
    median_abs_error_pct: Dict[int, float]
    sgd_ms: Dict[int, float]


def _profiled_matrix(n_train: int, seed: int = 2020) -> Tuple[ObservedMatrix, np.ndarray, int]:
    perf = PerformanceModel()
    train_names, test_names = train_test_split(n_train=n_train, seed=seed)
    train = throughput_rows([batch_profile(n) for n in train_names], perf)
    test = throughput_rows([batch_profile(n) for n in test_names], perf)
    matrix = ObservedMatrix(train.shape[0] + test.shape[0])
    for i in range(train.shape[0]):
        matrix.set_known_row(i, train[i])
    for t in range(test.shape[0]):
        matrix.observe(train.shape[0] + t, HI.index, test[t, HI.index])
        matrix.observe(train.shape[0] + t, LO.index, test[t, LO.index])
    return matrix, test, train.shape[0]


def run_table2(
    sgd_params: SGDParams = SGDParams(),
    dds_params: DDSParams = DDSParams(),
    repeats: int = 3,
    seed: int = 7,
) -> OverheadResult:
    """Measure the three overhead components on this implementation."""
    matrix, _, _ = _profiled_matrix(n_train=16)
    tracer = Tracer()
    reconstructor = PQReconstructor(sgd_params)
    reconstructor.tracer = tracer
    for _ in range(repeats):
        # Three reconstructions per quantum (throughput, latency, power).
        for _ in range(3):
            reconstructor.reconstruct(matrix)
    # One quantum's SGD cost = three consecutive reconstruction spans.
    per_call = np.array(tracer.durations_s("sgd.reconstruct"))
    sgd_times = per_call.reshape(repeats, 3).sum(axis=1)

    perf = PerformanceModel()
    power = PowerModel()
    profiles = [batch_profile(n) for n in SPEC_APPS[:16]]
    objective = SystemObjective(
        bips=throughput_rows(profiles, perf),
        power=np.vstack([power.power_row(p) for p in profiles]),
        max_power=100.0,
        max_ways=32,
    )
    searcher = DDSSearch(dds_params)
    searcher.tracer = tracer
    for r in range(repeats):
        rng = np.random.default_rng(seed + r)
        searcher.search(objective, n_dims=16, n_confs=N_JOINT_CONFIGS, rng=rng)
    dds_times = tracer.durations_s("dds.search")

    return OverheadResult(
        profiling_ms=2.0,  # two 1 ms samples (fixed by the schedule)
        sgd_ms=float(np.median(sgd_times)) * 1e3,
        dds_ms=float(np.median(dds_times)) * 1e3,
    )


def run_training_set_sensitivity(
    sizes: Tuple[int, ...] = (8, 16, 24),
    sgd_params: SGDParams = SGDParams(),
) -> TrainingSetSensitivity:
    """§VIII-A2: accuracy/cost as the offline training set grows."""
    errors: Dict[int, float] = {}
    times: Dict[int, float] = {}
    tracer = Tracer()
    for size in sizes:
        matrix, test, n_train = _profiled_matrix(n_train=size)
        reconstructor = PQReconstructor(sgd_params)
        reconstructor.tracer = tracer
        full = reconstructor.reconstruct(matrix)
        times[size] = tracer.durations_s("sgd.reconstruct")[-1] * 1e3
        err = relative_error_percent(full[n_train:], test)
        errors[size] = float(np.median(np.abs(err)))
    return TrainingSetSensitivity(
        sizes=sizes, median_abs_error_pct=errors, sgd_ms=times
    )


def render_table2(
    overheads: OverheadResult, sensitivity: TrainingSetSensitivity
) -> str:
    """Text rendering of both tables."""
    top = format_table(
        ["component", "this repo (ms)", "paper (ms)"],
        [
            ("profiling (2 samples)", f"{overheads.profiling_ms:.1f}", "2.0"),
            ("SGD reconstruction x3", f"{overheads.sgd_ms:.1f}", "4.8"),
            ("DDS search", f"{overheads.dds_ms:.1f}", "1.3"),
            ("total", f"{overheads.total_ms:.1f}", "8.1"),
        ],
    )
    bottom = format_table(
        ["training apps", "median |error| %", "SGD time (ms)"],
        [
            (
                size,
                f"{sensitivity.median_abs_error_pct[size]:.1f}",
                f"{sensitivity.sgd_ms[size]:.1f}",
            )
            for size in sensitivity.sizes
        ],
    )
    return (
        "Table II — scheduling overheads\n" + top
        + "\n\n§VIII-A2 — training-set-size sensitivity\n" + bottom
    )

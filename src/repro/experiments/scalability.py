"""Scalability study: CuttleSys on growing core counts (paper §I, §IV).

The paper's pitch is that exhaustive exploration is hopeless —
``(m*p)^(B)`` configurations — while SGD + DDS stay cheap "as the
number of cores and configuration parameters increases".  This study
runs CuttleSys on 16-, 32- and 48-core machines (half LC, half batch)
and reports:

* the measured per-quantum decision cost (SGD + search wall-clock),
* achieved batch work as a fraction of the perfect-inference oracle on
  the same machine (decision *quality* must not degrade with scale).

Fleet sharding: each (n_cores, arm) cell — arm being either the
CuttleSys controller or the perfect-inference oracle — is an
independent simulation, so the grid shards across all of them
(:func:`scalability_units`) and merges back in grid order.  One caveat:
``decision_ms`` is *real wall-clock* measured on the controller, so it
is deterministic in value only up to machine noise; the determinism
contract therefore covers every field except timings, and
:func:`render_scalability` can drop the timing column
(``include_timings=False``, the CLI's ``--no-timings``) when byte-exact
comparison across ``--jobs`` settings is wanted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.controller import ControllerConfig
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.reporting import format_table
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.sim.machine import Machine, MachineParams
from repro.telemetry.live import LiveAggregator
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace

#: Grid arms per machine size, in merge order.
ARMS: Tuple[str, ...] = ("cuttlesys", "oracle")


@dataclass(frozen=True)
class ScalePoint:
    """Results at one machine size."""

    n_cores: int
    n_batch_jobs: int
    decision_ms: float
    cuttlesys_instructions_b: float
    oracle_instructions_b: float

    @property
    def quality(self) -> float:
        """CuttleSys work as a fraction of the oracle's."""
        return self.cuttlesys_instructions_b / max(
            self.oracle_instructions_b, 1e-9
        )


def _machine(n_cores: int, seed: int, service_name: str = "xapian") -> Machine:
    _, test_names = train_test_split()
    n_batch = n_cores // 2
    profiles = [
        batch_profile(test_names[i % len(test_names)]) for i in range(n_batch)
    ]
    return Machine(
        lc_service=lc_service(service_name),
        batch_profiles=profiles,
        params=MachineParams(n_cores=n_cores),
        seed=seed,
    )


def _scale_cell(
    n_cores: int,
    arm: str,
    cap: float,
    load: float,
    n_slices: int,
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One (machine size, arm) simulation as a JSONable fleet unit."""
    lc_cores = n_cores // 2
    # The services' knee QPS is calibrated for 16 LC cores; scale the
    # offered load so per-core pressure is constant across machine
    # sizes.
    scaled_load = load * lc_cores / 16.0
    machine = _machine(n_cores, seed)
    reference = machine.reference_max_power()
    session = None
    if collect_telemetry:
        from repro.telemetry import Telemetry

        session = Telemetry()
    if arm == "cuttlesys":
        policy: Any = CuttleSysPolicy.for_machine(
            machine,
            seed=seed,
            config=ControllerConfig(seed=seed, initial_lc_cores=lc_cores),
        )
    elif arm == "oracle":
        policy = OracleReconfigPolicy(lc_cores=lc_cores, seed=seed)
    else:
        raise ValueError(f"unknown scalability arm {arm!r}")
    run = run_policy(
        machine, policy, LoadTrace.constant(scaled_load),
        power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        telemetry=session,
    )
    cell: Dict[str, Any] = {
        "n_cores": n_cores,
        "arm": arm,
        "n_batch_jobs": len(machine.batch_profiles),
        "instructions_b": run.total_batch_instructions() / 1e9,
    }
    if arm == "cuttlesys":
        timings = policy.controller.timings
        cell["decision_ms"] = float(
            np.median([t.total_s for t in timings]) * 1e3
        )
    if session is not None:
        cell["telemetry"] = telemetry_records(session)
    return cell


def scalability_units(
    core_counts: Sequence[int],
    cap: float,
    load: float,
    n_slices: int,
    seed: int,
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The study's fleet work units, one per (machine size, arm)."""
    return [
        WorkUnit(
            unit_id=f"scale/{n_cores}c/{arm}",
            fn=_scale_cell,
            kwargs={
                "n_cores": n_cores, "arm": arm, "cap": cap, "load": load,
                "n_slices": n_slices, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for n_cores in core_counts
        for arm in ARMS
    ]


def points_from_cells(cells: Sequence[Dict[str, Any]]) -> Tuple[ScalePoint, ...]:
    """Pair each machine size's arm cells back into :class:`ScalePoint` rows."""
    by_key = {(cell["n_cores"], cell["arm"]): cell for cell in cells}
    sizes = sorted({cell["n_cores"] for cell in cells})
    points = []
    for n_cores in sizes:
        cuttle = by_key[(n_cores, "cuttlesys")]
        oracle = by_key[(n_cores, "oracle")]
        points.append(
            ScalePoint(
                n_cores=n_cores,
                n_batch_jobs=cuttle["n_batch_jobs"],
                decision_ms=cuttle["decision_ms"],
                cuttlesys_instructions_b=cuttle["instructions_b"],
                oracle_instructions_b=oracle["instructions_b"],
            )
        )
    return tuple(points)


def run_scalability(
    core_counts: Sequence[int] = (16, 32, 48),
    cap: float = 0.6,
    load: float = 0.8,
    n_slices: int = 8,
    seed: int = 7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional["LiveAggregator"] = None,
) -> Tuple[ScalePoint, ...]:
    """CuttleSys and the oracle across machine sizes.

    ``merged_telemetry``, when given a list, receives the per-unit
    telemetry JSONL records merged into one canonical session log
    (:func:`repro.fleet.merge_unit_telemetry`).

    ``live``, when given a :class:`~repro.telemetry.live.LiveAggregator`,
    streams worker events into it mid-run and switches the merged log
    to the aggregator's *incremental* merge — byte-identical to the
    post-hoc one (the streaming-equivalence tests and CI diff pin
    this).
    """
    fleet = FleetRun(
        "scalability",
        scalability_units(
            core_counts, cap, load, n_slices, seed,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={
            "core_counts": list(core_counts), "cap": cap, "load": load,
            "n_slices": n_slices,
        },
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    return points_from_cells(outcome.values())


def render_scalability(
    points: Sequence[ScalePoint], include_timings: bool = True
) -> str:
    """Text table of the scaling study.

    ``include_timings=False`` drops the wall-clock ``decision (ms)``
    column — the one field outside the determinism contract — so the
    rendered report is byte-identical across ``--jobs`` settings.
    """
    if include_timings:
        header = ["cores", "batch jobs", "decision (ms)", "CuttleSys (B)",
                  "oracle (B)", "quality"]
        rows = [
            (
                p.n_cores,
                p.n_batch_jobs,
                f"{p.decision_ms:.1f}",
                f"{p.cuttlesys_instructions_b:.2f}",
                f"{p.oracle_instructions_b:.2f}",
                f"{p.quality:.2f}",
            )
            for p in points
        ]
    else:
        header = ["cores", "batch jobs", "CuttleSys (B)", "oracle (B)",
                  "quality"]
        rows = [
            (
                p.n_cores,
                p.n_batch_jobs,
                f"{p.cuttlesys_instructions_b:.2f}",
                f"{p.oracle_instructions_b:.2f}",
                f"{p.quality:.2f}",
            )
            for p in points
        ]
    return format_table(header, rows)

"""Scalability study: CuttleSys on growing core counts (paper §I, §IV).

The paper's pitch is that exhaustive exploration is hopeless —
``(m*p)^(B)`` configurations — while SGD + DDS stay cheap "as the
number of cores and configuration parameters increases".  This study
runs CuttleSys on 16-, 32- and 48-core machines (half LC, half batch)
and reports:

* the measured per-quantum decision cost (SGD + search wall-clock),
* achieved batch work as a fraction of the perfect-inference oracle on
  the same machine (decision *quality* must not degrade with scale).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.controller import ControllerConfig
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.reporting import format_table
from repro.sim.machine import Machine, MachineParams
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace


@dataclass(frozen=True)
class ScalePoint:
    """Results at one machine size."""

    n_cores: int
    n_batch_jobs: int
    decision_ms: float
    cuttlesys_instructions_b: float
    oracle_instructions_b: float

    @property
    def quality(self) -> float:
        """CuttleSys work as a fraction of the oracle's."""
        return self.cuttlesys_instructions_b / max(
            self.oracle_instructions_b, 1e-9
        )


def _machine(n_cores: int, seed: int, service_name: str = "xapian") -> Machine:
    _, test_names = train_test_split()
    n_batch = n_cores // 2
    profiles = [
        batch_profile(test_names[i % len(test_names)]) for i in range(n_batch)
    ]
    return Machine(
        lc_service=lc_service(service_name),
        batch_profiles=profiles,
        params=MachineParams(n_cores=n_cores),
        seed=seed,
    )


def run_scalability(
    core_counts: Sequence[int] = (16, 32, 48),
    cap: float = 0.6,
    load: float = 0.8,
    n_slices: int = 8,
    seed: int = 7,
) -> Tuple[ScalePoint, ...]:
    """CuttleSys and the oracle across machine sizes."""
    points = []
    for n_cores in core_counts:
        lc_cores = n_cores // 2
        # The services' knee QPS is calibrated for 16 LC cores; scale
        # the offered load so per-core pressure is constant across
        # machine sizes.
        scaled_load = load * lc_cores / 16.0
        machine = _machine(n_cores, seed)
        reference = machine.reference_max_power()
        policy = CuttleSysPolicy.for_machine(
            machine,
            seed=seed,
            config=ControllerConfig(seed=seed, initial_lc_cores=lc_cores),
        )
        run = run_policy(
            machine, policy, LoadTrace.constant(scaled_load),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        timings = policy.controller.timings
        decision_ms = float(
            np.median([t.total_s for t in timings]) * 1e3
        )

        oracle_machine = _machine(n_cores, seed)
        oracle = OracleReconfigPolicy(lc_cores=lc_cores, seed=seed)
        oracle_run = run_policy(
            oracle_machine, oracle, LoadTrace.constant(scaled_load),
            power_cap_fraction=cap, n_slices=n_slices, max_power_w=reference,
        )
        points.append(
            ScalePoint(
                n_cores=n_cores,
                n_batch_jobs=len(machine.batch_profiles),
                decision_ms=decision_ms,
                cuttlesys_instructions_b=run.total_batch_instructions() / 1e9,
                oracle_instructions_b=(
                    oracle_run.total_batch_instructions() / 1e9
                ),
            )
        )
    return tuple(points)


def render_scalability(points: Sequence[ScalePoint]) -> str:
    """Text table of the scaling study."""
    return format_table(
        ["cores", "batch jobs", "decision (ms)", "CuttleSys (B)",
         "oracle (B)", "quality"],
        [
            (
                p.n_cores,
                p.n_batch_jobs,
                f"{p.decision_ms:.1f}",
                f"{p.cuttlesys_instructions_b:.2f}",
                f"{p.oracle_instructions_b:.2f}",
                f"{p.quality:.2f}",
            )
            for p in points
        ],
    )

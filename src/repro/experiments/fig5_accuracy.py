"""Fig. 5(a)/(b) — SGD reconstruction accuracy, isolation and colocation.

*Isolation* (Fig. 5a): test applications are measured noise-free on the
two profiling configurations; SGD infers the remaining 106 entries, and
errors are compared against the analytical ground truth.  The paper
reports 25th/75th percentiles within 10 % and 5th/95th within 20 %.

*Colocation* (Fig. 5b): observations come from the machine simulator,
adding profiling noise and phase drift — the runtime error sources of
§VIII-B.  Percentile spreads widen relative to isolation, with the
median still near zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.matrices import (
    ObservedMatrix,
    latency_row,
    latency_training_rows,
    power_rows,
    throughput_rows,
)
from repro.core.sgd import PQReconstructor, SGDParams
from repro.experiments.reporting import (
    format_table,
    percentile_summary,
    relative_error_percent,
)
from repro.sim.coreconfig import CoreConfig, JointConfig
from repro.sim.machine import Machine, MachineParams
from repro.sim.perf import PerformanceModel
from repro.sim.power import PowerModel
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import make_services, service_variants

#: The two profiling configurations (widest/narrowest, one LLC way).
HI_JOINT = JointConfig(CoreConfig.widest(), 1.0)
LO_JOINT = JointConfig(CoreConfig.narrowest(), 1.0)


@dataclass(frozen=True)
class AccuracyResult:
    """Percentile error summaries per metric (percent, signed).

    ``tail_latency`` errors are computed over the QoS-relevant
    configurations (true p99 within 3x the QoS target); for
    deep-in-saturation configurations "exact latency prediction is less
    critical, as long as the prediction shows that QoS is violated"
    (§VIII-B) — that is measured by ``latency_qos_classification``, the
    fraction of configurations whose predicted QoS verdict (meets /
    violates) matches the truth.
    """

    throughput: Dict[str, float]
    power: Dict[str, float]
    tail_latency: Dict[str, float]
    latency_qos_classification: float = 1.0

    def as_rows(self):
        """Rows for text rendering."""
        out = []
        for name, summary in (
            ("throughput", self.throughput),
            ("tail latency", self.tail_latency),
            ("power", self.power),
        ):
            out.append(
                (
                    name,
                    f"{summary['p5']:+.1f}",
                    f"{summary['p25']:+.1f}",
                    f"{summary['median']:+.1f}",
                    f"{summary['p75']:+.1f}",
                    f"{summary['p95']:+.1f}",
                )
            )
        return out


def _sparse_matrix(train_rows: np.ndarray, test_rows: np.ndarray,
                   observe: Sequence[int]) -> ObservedMatrix:
    matrix = ObservedMatrix(train_rows.shape[0] + test_rows.shape[0])
    for i in range(train_rows.shape[0]):
        matrix.set_known_row(i, train_rows[i])
    for t in range(test_rows.shape[0]):
        for col in observe:
            matrix.observe(train_rows.shape[0] + t, col, test_rows[t, col])
    return matrix


def _batch_errors(
    builder, perf_or_power, reconstructor: PQReconstructor
) -> np.ndarray:
    train_names, test_names = train_test_split()
    train = builder([batch_profile(n) for n in train_names], perf_or_power)
    test = builder([batch_profile(n) for n in test_names], perf_or_power)
    matrix = _sparse_matrix(train, test, [HI_JOINT.index, LO_JOINT.index])
    full = reconstructor.reconstruct(matrix)
    predictions = full[train.shape[0]:]
    return relative_error_percent(predictions, test)


#: Latency errors are reported on configurations whose true p99 is
#: within this multiple of QoS; beyond it only the violation verdict
#: matters (§VIII-B).
QOS_RELEVANCE_FACTOR = 3.0


def _latency_errors(
    perf: PerformanceModel,
    reconstructor: PQReconstructor,
    load: float = 0.8,
    n_cores: int = 16,
    variants_per_service: int = 3,
) -> tuple:
    """Leave-one-service-out latency errors + QoS-verdict accuracy."""
    services = make_services(perf)
    errors = []
    verdicts_right = 0
    verdicts_total = 0
    for name, service in services.items():
        train = [s for other, s in services.items() if other != name]
        for base in services:
            train.extend(
                service_variants(base, variants_per_service, seed=1, perf=perf)
            )
        rows, _ = latency_training_rows(train, [load], perf, n_cores)
        truth = latency_row(service, perf, load, n_cores)
        matrix = ObservedMatrix(rows.shape[0] + 1)
        for i in range(rows.shape[0]):
            matrix.set_known_row(i, rows[i])
        # The latency row starts from a single steady-state sample plus
        # the widest profiling configuration (paper: m*p - 1 initially).
        wide = JointConfig(CoreConfig.widest(), 4.0).index
        matrix.observe(rows.shape[0], wide, truth[wide])
        mid = JointConfig(CoreConfig(4, 2, 4), 2.0).index
        matrix.observe(rows.shape[0], mid, truth[mid])
        full = reconstructor.reconstruct(matrix)
        predicted = full[-1]
        qos = service.qos_latency_s
        relevant = truth <= QOS_RELEVANCE_FACTOR * qos
        errors.append(
            relative_error_percent(predicted[relevant], truth[relevant])
        )
        verdicts_right += int(
            np.sum((predicted <= qos) == (truth <= qos))
        )
        verdicts_total += truth.size
    return np.concatenate(errors), verdicts_right / verdicts_total


def run_fig5a(
    params: SGDParams = SGDParams(), perf: Optional[PerformanceModel] = None
) -> AccuracyResult:
    """Isolation accuracy: noise-free samples, analytical ground truth."""
    perf = perf if perf is not None else PerformanceModel()
    power = PowerModel()
    reconstructor = PQReconstructor(params)
    throughput = _batch_errors(throughput_rows, perf, reconstructor)
    power_err = _batch_errors(power_rows, power, reconstructor)
    latency, classification = _latency_errors(perf, reconstructor)
    return AccuracyResult(
        throughput=percentile_summary(throughput),
        power=percentile_summary(power_err),
        tail_latency=percentile_summary(latency),
        latency_qos_classification=classification,
    )


def run_fig5b(
    params: SGDParams = SGDParams(),
    seed: int = 3,
    machine_params: MachineParams = MachineParams(),
) -> AccuracyResult:
    """Colocation accuracy: noisy machine samples, phase drift included."""
    _, test_names = train_test_split()
    train_names, _ = train_test_split()
    services = make_services()
    machine = Machine(
        lc_service=services["xapian"],
        batch_profiles=[batch_profile(n) for n in test_names],
        params=machine_params,
        seed=seed,
    )
    # Let phases drift for a few slices before sampling.
    for _ in range(3):
        machine._advance_phases()
    sample = machine.profile(load=0.8)

    reconstructor = PQReconstructor(params)
    perf = machine.perf
    power = machine.power
    train_profiles = [batch_profile(n) for n in train_names]
    results = {}
    for label, train_rows, observed_hi, observed_lo, truth_fn in (
        (
            "throughput",
            throughput_rows(train_profiles, perf),
            sample.batch_bips_hi,
            sample.batch_bips_lo,
            lambda j, joint: machine.true_batch_bips(j, joint),
        ),
        (
            "power",
            power_rows(train_profiles, power),
            sample.batch_power_hi,
            sample.batch_power_lo,
            lambda j, joint: machine.true_batch_power(j, joint.core),
        ),
    ):
        n_test = len(test_names)
        matrix = ObservedMatrix(train_rows.shape[0] + n_test)
        for i in range(train_rows.shape[0]):
            matrix.set_known_row(i, train_rows[i])
        for t in range(n_test):
            matrix.observe(train_rows.shape[0] + t, HI_JOINT.index, observed_hi[t])
            matrix.observe(train_rows.shape[0] + t, LO_JOINT.index, observed_lo[t])
        full = reconstructor.reconstruct(matrix)
        truth = np.empty((n_test, matrix.n_cols))
        for t in range(n_test):
            for c in range(matrix.n_cols):
                truth[t, c] = truth_fn(t, JointConfig.from_index(c))
        results[label] = relative_error_percent(
            full[train_rows.shape[0]:], truth
        )

    # Latency under colocation: one noisy steady-state measurement.
    rng = np.random.default_rng(seed)
    latency_errors = []
    verdicts_right = 0
    verdicts_total = 0
    for name, service in services.items():
        train = [s for other, s in services.items() if other != name]
        for base in services:
            train.extend(service_variants(base, 3, seed=1, perf=perf))
        rows, _ = latency_training_rows(train, [0.8], perf, 16)
        truth = latency_row(service, perf, 0.8, 16)
        matrix = ObservedMatrix(rows.shape[0] + 1)
        for i in range(rows.shape[0]):
            matrix.set_known_row(i, rows[i])
        noise = machine_params.slice_noise
        for joint in (JointConfig(CoreConfig.widest(), 4.0),
                      JointConfig(CoreConfig(4, 2, 4), 2.0)):
            noisy = truth[joint.index] * float(
                np.exp(rng.normal(0.0, noise * 2))
            )
            matrix.observe(rows.shape[0], joint.index, noisy)
        full = reconstructor.reconstruct(matrix)
        predicted = full[-1]
        qos = service.qos_latency_s
        relevant = truth <= QOS_RELEVANCE_FACTOR * qos
        latency_errors.append(
            relative_error_percent(predicted[relevant], truth[relevant])
        )
        verdicts_right += int(np.sum((predicted <= qos) == (truth <= qos)))
        verdicts_total += truth.size

    return AccuracyResult(
        throughput=percentile_summary(results["throughput"]),
        power=percentile_summary(results["power"]),
        tail_latency=percentile_summary(np.concatenate(latency_errors)),
        latency_qos_classification=verdicts_right / verdicts_total,
    )


def render_fig5(isolation: AccuracyResult, colocation: AccuracyResult) -> str:
    """Text rendering of both panels."""
    headers = ["metric", "p5%", "p25%", "median%", "p75%", "p95%"]
    return (
        "Fig. 5a — reconstruction error, isolation\n"
        + format_table(headers, isolation.as_rows())
        + "\n(latency errors over QoS-relevant configs; QoS-verdict "
        + f"accuracy {isolation.latency_qos_classification:.1%})"
        + "\n\nFig. 5b — reconstruction error, colocation (noise + phases)\n"
        + format_table(headers, colocation.as_rows())
        + "\n(QoS-verdict accuracy "
        + f"{colocation.latency_qos_classification:.1%})"
    )

"""Extension study: several latency-critical services on one machine.

The paper evaluates one LC service per machine "for simplicity,
however, CuttleSys is generalizable to any number of LC and batch
services, as long as the system is not oversubscribed" (§VII-A).  This
study exercises that claim: two services (a search engine and an OLTP
store) share one 32-core machine with a batch mix, each with its own
QoS target, load trace, latency matrices, and core allocation; the
controller scans configurations per service, arbitrates the
one-core-per-quantum relocation budget between them, and runs one DDS
over the batch jobs against the combined reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


from repro.core.controller import ControllerConfig
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import run_policy
from repro.experiments.reporting import format_table
from repro.sim.machine import Machine, MachineParams
from repro.workloads.batch import batch_profile, train_test_split
from repro.workloads.latency_critical import lc_service
from repro.workloads.loadgen import LoadTrace


@dataclass(frozen=True)
class MultiServiceResult:
    """Outcome of one two-service run."""

    services: Tuple[str, str]
    qos_violations: int
    batch_instructions_b: float
    #: Final (cores, config label) per service.
    final_allocations: Tuple[Tuple[int, str], ...]
    #: Per-slice p99/QoS per service.
    p99_over_qos: Tuple[Tuple[float, float], ...]


def build_two_service_machine(
    primary: str = "xapian",
    secondary: str = "silo",
    n_batch: int = 12,
    seed: int = 7,
    params: Optional[MachineParams] = None,
) -> Machine:
    """A 32-core machine hosting two LC services plus batch jobs."""
    _, test_names = train_test_split()
    profiles = [
        batch_profile(test_names[i % len(test_names)]) for i in range(n_batch)
    ]
    return Machine(
        lc_service=lc_service(primary),
        batch_profiles=profiles,
        params=params if params is not None else MachineParams(),
        seed=seed,
        extra_services=(lc_service(secondary),),
    )


def run_multi_service(
    primary: str = "xapian",
    secondary: str = "silo",
    load_primary: float = 0.4,
    load_secondary: float = 0.35,
    cap: float = 0.75,
    n_slices: int = 14,
    seed: int = 7,
) -> MultiServiceResult:
    """Run CuttleSys over a two-service colocation.

    Loads are fractions of each service's 16-core knee; with the cores
    split between the services, loads near 0.4 keep per-core pressure
    comparable to the single-service experiments at 0.8.
    """
    machine = build_two_service_machine(primary, secondary, seed=seed)
    policy = CuttleSysPolicy.for_machine(
        machine, seed=seed, config=ControllerConfig(seed=seed)
    )
    run = run_policy(
        machine,
        policy,
        LoadTrace.constant(load_primary),
        power_cap_fraction=cap,
        n_slices=n_slices,
        extra_traces=(LoadTrace.constant(load_secondary),),
    )
    final = run.measurements[-1].assignment
    qos_secondary = machine.lc_services[1].qos_latency_s
    return MultiServiceResult(
        services=(primary, secondary),
        qos_violations=run.qos_violations(),
        batch_instructions_b=run.total_batch_instructions() / 1e9,
        final_allocations=(
            (final.lc_cores, final.lc_config.label),
            (final.extra_lc[0].cores, final.extra_lc[0].config.label),
        ),
        p99_over_qos=tuple(
            (
                m.lc_p99 / machine.lc_service.qos_latency_s,
                m.extra_lc_p99[0] / qos_secondary,
            )
            for m in run.measurements
        ),
    )


def render_multi_service(result: MultiServiceResult) -> str:
    """Text rendering of the two-service run."""
    rows = [
        (i, f"{a:.2f}", f"{b:.2f}")
        for i, (a, b) in enumerate(result.p99_over_qos)
    ]
    table = format_table(
        ["slice", f"{result.services[0]} p99/QoS",
         f"{result.services[1]} p99/QoS"],
        rows,
    )
    (cores_a, cfg_a), (cores_b, cfg_b) = result.final_allocations
    return (
        f"Two services on one machine: {result.services[0]} + "
        f"{result.services[1]}\n"
        + table
        + f"\nfinal: {result.services[0]} -> {cores_a} cores @ {cfg_a}, "
        + f"{result.services[1]} -> {cores_b} cores @ {cfg_b}; "
        + f"batch work {result.batch_instructions_b:.2f} B; "
        + f"QoS violations {result.qos_violations}"
    )

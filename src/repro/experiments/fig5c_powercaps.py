"""Fig. 5(c) — relative useful work vs power cap, per policy.

Total instructions executed by batch applications over the same
wall-clock window, relative to a no-gating machine, for each power cap
in {90, 80, 70, 60, 50} % — the paper's headline comparison.  Expected
shape: fixed-core designs win slightly at relaxed caps (CuttleSys pays
the reconfigurability energy tax), CuttleSys overtakes core-level
gating below ~80 % and the oracle-like asymmetric multicore at the most
stringent caps, with QoS always met.

The full paper sweep is 50 mixes x 5 caps; ``run_fig5c`` defaults to a
representative subset (one mix per LC service) so it completes in
minutes — pass ``mix_indices=range(50)`` for the full rerun.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    AsymmetricOraclePolicy,
    CoreGatingPolicy,
    NoGatingPolicy,
    StaticAsymmetricPolicy,
)
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.sim.machine import Machine
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

#: Power caps evaluated in the paper, as fractions of the reference.
PAPER_CAPS: Tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5)

#: One representative mix per LC service (indices into paper_mixes()).
DEFAULT_MIX_INDICES: Tuple[int, ...] = (0, 12, 25, 37, 44)

#: (name, factory, runs-on-reconfigurable-machine) for every scheme.
PolicyFactory = Callable[[Machine], object]


def policy_catalogue(seed: int) -> List[Tuple[str, PolicyFactory, bool]]:
    """The five schemes of Fig. 5c plus the static 50/50 of §VIII-C."""
    return [
        ("no-gating", lambda m: NoGatingPolicy(), False),
        ("core-gating", lambda m: CoreGatingPolicy(way_partition=False), False),
        ("core-gating+wp", lambda m: CoreGatingPolicy(way_partition=True), False),
        ("asymm-oracle", lambda m: AsymmetricOraclePolicy(), False),
        ("asymm-50-50", lambda m: StaticAsymmetricPolicy(), False),
        ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=seed), True),
    ]


@dataclass
class Fig5cResult:
    """Per-(cap, policy) aggregates over the evaluated mixes."""

    caps: Tuple[float, ...]
    policies: Tuple[str, ...]
    #: relative[cap][policy] = mean instructions relative to no-gating.
    relative: Dict[float, Dict[str, float]] = field(default_factory=dict)
    qos_violations: Dict[float, Dict[str, int]] = field(default_factory=dict)

    def speedup(self, cap: float, policy: str, over: str) -> float:
        """Ratio of one policy's relative work over another's."""
        return self.relative[cap][policy] / self.relative[cap][over]


def run_fig5c(
    mix_indices: Sequence[int] = DEFAULT_MIX_INDICES,
    caps: Sequence[float] = PAPER_CAPS,
    n_slices: int = 10,
    load: float = 0.8,
    seed: int = 7,
    policies: Optional[List[Tuple[str, PolicyFactory, bool]]] = None,
) -> Fig5cResult:
    """Sweep policies x caps x mixes at near-saturation load."""
    mixes = paper_mixes()
    chosen = [mixes[i] for i in mix_indices]
    catalogue = policies if policies is not None else policy_catalogue(seed)
    result = Fig5cResult(
        caps=tuple(caps), policies=tuple(name for name, _, _ in catalogue)
    )
    trace = LoadTrace.constant(load)
    for cap in caps:
        sums: Dict[str, List[float]] = {name: [] for name, _, _ in catalogue}
        qos: Dict[str, int] = {name: 0 for name, _, _ in catalogue}
        for mix in chosen:
            reference = reference_power_for_mix(mix, seed=seed)
            baseline_instr = None
            for name, factory, reconfigurable in catalogue:
                machine = build_machine_for_mix(
                    mix, seed=seed, reconfigurable=reconfigurable
                )
                policy = factory(machine)
                run = run_policy(
                    machine,
                    policy,
                    trace,
                    power_cap_fraction=cap,
                    n_slices=n_slices,
                    max_power_w=reference,
                )
                instr = run.total_batch_instructions()
                if name == "no-gating":
                    baseline_instr = instr
                if baseline_instr:
                    sums[name].append(instr / baseline_instr)
                qos[name] += run.qos_violations()
        result.relative[cap] = {
            name: float(np.mean(vals)) for name, vals in sums.items()
        }
        result.qos_violations[cap] = qos
    return result


def render_fig5c(result: Fig5cResult) -> str:
    """Text rendering of the cap sweep plus headline speedups."""
    rows = []
    for cap in result.caps:
        rows.append(
            [f"{cap:.0%}"]
            + [f"{result.relative[cap][p]:.2f}" for p in result.policies]
        )
    table = format_table(["cap"] + list(result.policies), rows)
    tightest = min(result.caps)
    lines = [table, ""]
    for over in ("core-gating", "core-gating+wp", "asymm-oracle"):
        if over in result.policies and "cuttlesys" in result.policies:
            avg = np.mean(
                [result.speedup(c, "cuttlesys", over) for c in result.caps
                 if c <= 0.8]
            )
            best = result.speedup(tightest, "cuttlesys", over)
            lines.append(
                f"CuttleSys vs {over}: {avg:.2f}x mean (caps <= 80%), "
                f"{best:.2f}x at {tightest:.0%}"
            )
    total_qos = sum(
        result.qos_violations[c].get("cuttlesys", 0) for c in result.caps
    )
    lines.append(f"CuttleSys QoS violations across sweep: {total_qos}")
    return "\n".join(lines)

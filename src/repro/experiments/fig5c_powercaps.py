"""Fig. 5(c) — relative useful work vs power cap, per policy.

Total instructions executed by batch applications over the same
wall-clock window, relative to a no-gating machine, for each power cap
in {90, 80, 70, 60, 50} % — the paper's headline comparison.  Expected
shape: fixed-core designs win slightly at relaxed caps (CuttleSys pays
the reconfigurability energy tax), CuttleSys overtakes core-level
gating below ~80 % and the oracle-like asymmetric multicore at the most
stringent caps, with QoS always met.

The full paper sweep is 50 mixes x 5 caps; ``run_fig5c`` defaults to a
representative subset (one mix per LC service) so it completes in
minutes — pass ``mix_indices=range(50)`` for the full rerun.

Fleet sharding: each (cap, mix) pair is one independent
:class:`~repro.fleet.WorkUnit` running every policy of the catalogue
(the no-gating baseline must share the cell so relative work is
computed against the *same* simulation), so the grid shards across
``--jobs`` workers and checkpoints/resumes like any fleet run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import (
    AsymmetricOraclePolicy,
    CoreGatingPolicy,
    NoGatingPolicy,
    StaticAsymmetricPolicy,
)
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.experiments.reporting import format_table
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.sim.machine import Machine
from repro.telemetry.live import LiveAggregator
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

#: Power caps evaluated in the paper, as fractions of the reference.
PAPER_CAPS: Tuple[float, ...] = (0.9, 0.8, 0.7, 0.6, 0.5)

#: One representative mix per LC service (indices into paper_mixes()).
DEFAULT_MIX_INDICES: Tuple[int, ...] = (0, 12, 25, 37, 44)

#: (name, factory, runs-on-reconfigurable-machine) for every scheme.
PolicyFactory = Callable[[Machine], object]


def policy_catalogue(seed: int) -> List[Tuple[str, PolicyFactory, bool]]:
    """The five schemes of Fig. 5c plus the static 50/50 of §VIII-C."""
    return [
        ("no-gating", lambda m: NoGatingPolicy(), False),
        ("core-gating", lambda m: CoreGatingPolicy(way_partition=False), False),
        ("core-gating+wp", lambda m: CoreGatingPolicy(way_partition=True), False),
        ("asymm-oracle", lambda m: AsymmetricOraclePolicy(), False),
        ("asymm-50-50", lambda m: StaticAsymmetricPolicy(), False),
        ("cuttlesys", lambda m: CuttleSysPolicy.for_machine(m, seed=seed), True),
    ]


@dataclass
class Fig5cResult:
    """Per-(cap, policy) aggregates over the evaluated mixes."""

    caps: Tuple[float, ...]
    policies: Tuple[str, ...]
    #: relative[cap][policy] = mean instructions relative to no-gating.
    relative: Dict[float, Dict[str, float]] = field(default_factory=dict)
    qos_violations: Dict[float, Dict[str, int]] = field(default_factory=dict)

    def speedup(self, cap: float, policy: str, over: str) -> float:
        """Ratio of one policy's relative work over another's."""
        return self.relative[cap][policy] / self.relative[cap][over]


def _fig5c_cell(
    cap: float,
    mix_index: int,
    n_slices: int,
    load: float,
    seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One (cap, mix) fleet unit: every catalogue policy on that mix.

    All policies run inside one unit because the relative-work metric
    divides by the no-gating baseline *of the same mix and cap*; a
    per-policy sharding would force cross-unit data flow.
    """
    mix = paper_mixes()[mix_index]
    reference = reference_power_for_mix(mix, seed=seed)
    trace = LoadTrace.constant(load)
    session = None
    if collect_telemetry:
        from repro.telemetry import Telemetry

        session = Telemetry()
    relative: Dict[str, float] = {}
    qos: Dict[str, int] = {}
    baseline_instr = None
    for name, factory, reconfigurable in policy_catalogue(seed):
        machine = build_machine_for_mix(
            mix, seed=seed, reconfigurable=reconfigurable
        )
        policy = factory(machine)
        run = run_policy(
            machine,
            policy,
            trace,
            power_cap_fraction=cap,
            n_slices=n_slices,
            max_power_w=reference,
            telemetry=session,
        )
        instr = run.total_batch_instructions()
        if name == "no-gating":
            baseline_instr = instr
        if baseline_instr:
            relative[name] = instr / baseline_instr
        qos[name] = run.qos_violations()
    cell: Dict[str, Any] = {
        "cap": cap,
        "mix_index": mix_index,
        "relative": relative,
        "qos_violations": qos,
    }
    if session is not None:
        cell["telemetry"] = telemetry_records(session)
    return cell


def fig5c_units(
    mix_indices: Sequence[int],
    caps: Sequence[float],
    n_slices: int,
    load: float,
    seed: int,
    collect_telemetry: bool = False,
) -> List[WorkUnit]:
    """The sweep's fleet work units, one per (cap, mix)."""
    return [
        WorkUnit(
            unit_id=f"fig5c/c{int(round(cap * 100))}/m{mix_index}",
            fn=_fig5c_cell,
            kwargs={
                "cap": cap, "mix_index": mix_index, "n_slices": n_slices,
                "load": load, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for cap in caps
        for mix_index in mix_indices
    ]


def result_from_cells(
    cells: Sequence[Dict[str, Any]],
    caps: Sequence[float],
    policies: Sequence[str],
) -> Fig5cResult:
    """Aggregate per-(cap, mix) cells back into a :class:`Fig5cResult`."""
    result = Fig5cResult(caps=tuple(caps), policies=tuple(policies))
    for cap in caps:
        matching = [cell for cell in cells if cell["cap"] == cap]
        result.relative[cap] = {
            name: float(np.mean([c["relative"][name] for c in matching]))
            for name in policies
        }
        result.qos_violations[cap] = {
            name: int(sum(c["qos_violations"][name] for c in matching))
            for name in policies
        }
    return result


def run_fig5c(
    mix_indices: Sequence[int] = DEFAULT_MIX_INDICES,
    caps: Sequence[float] = PAPER_CAPS,
    n_slices: int = 10,
    load: float = 0.8,
    seed: int = 7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional["LiveAggregator"] = None,
) -> Fig5cResult:
    """Sweep policies x caps x mixes at near-saturation load.

    The (cap, mix) grid executes as fleet work units: ``jobs`` shards
    it across worker processes, ``checkpoint``/``resume`` make the
    sweep crash-safe, and ``merged_telemetry``/``live`` follow the
    same contract as :func:`repro.experiments.scalability.run_scalability`.
    """
    fleet = FleetRun(
        "fig5c",
        fig5c_units(
            mix_indices, caps, n_slices, load, seed,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={
            "mix_indices": list(mix_indices), "caps": list(caps),
            "n_slices": n_slices, "load": load,
        },
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    policies = tuple(name for name, _, _ in policy_catalogue(seed))
    return result_from_cells(outcome.values(), tuple(caps), policies)


def render_fig5c(result: Fig5cResult) -> str:
    """Text rendering of the cap sweep plus headline speedups."""
    rows = []
    for cap in result.caps:
        rows.append(
            [f"{cap:.0%}"]
            + [f"{result.relative[cap][p]:.2f}" for p in result.policies]
        )
    table = format_table(["cap"] + list(result.policies), rows)
    tightest = min(result.caps)
    lines = [table, ""]
    for over in ("core-gating", "core-gating+wp", "asymm-oracle"):
        if over in result.policies and "cuttlesys" in result.policies:
            avg = np.mean(
                [result.speedup(c, "cuttlesys", over) for c in result.caps
                 if c <= 0.8]
            )
            best = result.speedup(tightest, "cuttlesys", over)
            lines.append(
                f"CuttleSys vs {over}: {avg:.2f}x mean (caps <= 80%), "
                f"{best:.2f}x at {tightest:.0%}"
            )
    total_qos = sum(
        result.qos_violations[c].get("cuttlesys", 0) for c in result.caps
    )
    lines.append(f"CuttleSys QoS violations across sweep: {total_qos}")
    return "\n".join(lines)

"""Extension study: rack-level power brokering over CuttleSys sockets.

The paper assumes each server's budget comes from "a global power
manager running datacenter-wide" (§I) but evaluates a single server.
This study closes the loop: two CuttleSys-managed sockets share one
rack budget while their LC loads move in *anti-phase* (one peaks as the
other troughs).  A static 50/50 split strands power on the idle socket;
the :class:`~repro.core.broker.PowerBroker` shifts budget toward the
loaded socket each quantum.

Fleet sharding: the broker rebalances budget across *both* sockets
every quantum, so the sockets of one scheme are coupled and cannot be
sharded independently.  The two allocation *schemes*, however, are
fully independent full-rack simulations, so the study shards at the
scheme level (:func:`cluster_units`) and merges outcomes in scheme
order — ``--jobs 2`` output is byte-identical to serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.broker import BrokerParams, PowerBroker, Socket
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import build_machine_for_mix
from repro.experiments.reporting import format_table
from repro.fleet import (
    FleetParams,
    FleetRun,
    WorkUnit,
    merge_unit_telemetry,
    telemetry_records,
)
from repro.telemetry.live import LiveAggregator
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

#: Allocation schemes compared by the study, in report order.
SCHEMES: Tuple[str, ...] = ("static-50-50", "broker")


@dataclass(frozen=True)
class ClusterOutcome:
    """One (allocation scheme) row of the study."""

    scheme: str
    rack_instructions_b: float
    qos_violations: int
    #: (min, max) budget seen by socket A, watts.
    socket_a_budget_range: Tuple[float, float]


def _build_sockets(seed: int, n_slices: int):
    from repro.sim.machine import Machine
    from repro.workloads.batch import batch_profile, train_test_split
    from repro.workloads.latency_critical import lc_service

    mixes = paper_mixes()
    mix_a = mixes[0]    # xapian, full 16-job batch complement
    machine_a = build_machine_for_mix(mix_a, seed=seed)
    # Socket B is under-populated (8 batch jobs): once they run wide it
    # cannot productively spend more power — the slack a rack-level
    # manager should harvest.
    _, test_names = train_test_split()
    machine_b = Machine(
        lc_service=lc_service("silo"),
        batch_profiles=[batch_profile(n) for n in test_names[:8]],
        seed=seed + 1,
    )
    period = n_slices * 0.1
    trace_a = LoadTrace.diurnal(low=0.2, high=0.9, period=period)
    trace_b = LoadTrace.constant(0.3)
    sockets = [
        Socket("socket-a", machine_a,
               CuttleSysPolicy.for_machine(machine_a, seed=seed), trace_a),
        Socket("socket-b", machine_b,
               CuttleSysPolicy.for_machine(machine_b, seed=seed + 1),
               trace_b),
    ]
    rack_budget = 0.60 * (
        machine_a.reference_max_power() + machine_b.reference_max_power()
    )
    qos = {
        "socket-a": machine_a.lc_service.qos_latency_s,
        "socket-b": machine_b.lc_service.qos_latency_s,
    }
    return sockets, rack_budget, qos


def _scheme_cell(
    scheme: str, n_slices: int, seed: int,
    collect_telemetry: bool = False,
) -> Dict[str, Any]:
    """One scheme's full rack simulation as a JSONable fleet unit.

    Top-level so worker processes can unpickle it by reference; returns
    plain JSON types so the value checkpoints and merges exactly.
    """
    if scheme == "static-50-50":
        params = BrokerParams(step=1e-9)  # effectively frozen
    elif scheme == "broker":
        params = BrokerParams()
    else:
        raise ValueError(f"unknown allocation scheme {scheme!r}")
    sockets, rack_budget, qos = _build_sockets(seed, n_slices)
    session = None
    if collect_telemetry:
        from repro.telemetry import Telemetry

        session = Telemetry()
        for socket in sockets:
            socket.machine.attach_telemetry(session)
    broker = PowerBroker(sockets, rack_budget, params)
    run = broker.run(n_slices)
    series = run.budget_series("socket-a")
    cell: Dict[str, Any] = {
        "scheme": scheme,
        "rack_instructions_b": run.total_batch_instructions() / 1e9,
        "qos_violations": run.qos_violations(qos),
        "socket_a_budget_range": [min(series), max(series)],
    }
    if session is not None:
        session.counter("cluster.qos_violations").inc(
            run.qos_violations(qos)
        )
        cell["telemetry"] = telemetry_records(session)
    return cell


def cluster_units(
    n_slices: int, seed: int, collect_telemetry: bool = False
) -> List[WorkUnit]:
    """The study's fleet work units, one per allocation scheme."""
    return [
        WorkUnit(
            unit_id=f"cluster/{scheme}",
            fn=_scheme_cell,
            kwargs={
                "scheme": scheme, "n_slices": n_slices, "seed": seed,
                "collect_telemetry": collect_telemetry,
            },
        )
        for scheme in SCHEMES
    ]


def outcomes_from_cells(cells: List[Dict[str, Any]]) -> Dict[str, ClusterOutcome]:
    """Rehydrate :class:`ClusterOutcome` rows from unit cell dicts."""
    results: Dict[str, ClusterOutcome] = {}
    for cell in cells:
        lo, hi = cell["socket_a_budget_range"]
        results[cell["scheme"]] = ClusterOutcome(
            scheme=cell["scheme"],
            rack_instructions_b=cell["rack_instructions_b"],
            qos_violations=cell["qos_violations"],
            socket_a_budget_range=(lo, hi),
        )
    return results


def run_cluster_study(
    n_slices: int = 20,
    seed: int = 7,
    jobs: int = 1,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    telemetry: Any = None,
    merged_telemetry: Optional[List[Dict]] = None,
    live: Optional[LiveAggregator] = None,
) -> Dict[str, ClusterOutcome]:
    """Static 50/50 split vs dynamic brokering over two sockets.

    ``merged_telemetry`` / ``live`` mirror
    :func:`repro.experiments.scalability.run_scalability`: collect
    per-unit telemetry into one merged session log, and optionally
    stream it through a :class:`LiveAggregator` mid-run.  When both
    are given, the merged log comes from the aggregator's incremental
    merge *after* it is verified byte-identical to the post-hoc one.
    """
    fleet = FleetRun(
        "cluster_study",
        cluster_units(
            n_slices, seed,
            collect_telemetry=(
                merged_telemetry is not None or live is not None
            ),
        ),
        FleetParams(jobs=jobs, checkpoint=checkpoint, resume=resume),
        seed=seed,
        context={"n_slices": n_slices},
        telemetry=telemetry,
        live=live,
    )
    outcome = fleet.execute()
    if merged_telemetry is not None:
        posthoc = merge_unit_telemetry(outcome.results)
        if live is not None:
            streamed = live.merged_records()
            if streamed != posthoc:
                raise RuntimeError(
                    "streaming incremental merge diverged from the "
                    "post-hoc merge_jsonl merge"
                )
            merged_telemetry.extend(streamed)
        else:
            merged_telemetry.extend(posthoc)
    return outcomes_from_cells(outcome.values())


def render_cluster_study(results: Dict[str, ClusterOutcome]) -> str:
    """Text table of the rack-level study."""
    rows = []
    for outcome in results.values():
        lo, hi = outcome.socket_a_budget_range
        rows.append(
            (
                outcome.scheme,
                f"{outcome.rack_instructions_b:.2f}",
                outcome.qos_violations,
                f"{lo:.1f}-{hi:.1f} W",
            )
        )
    gain = (
        results["broker"].rack_instructions_b
        / max(results["static-50-50"].rack_instructions_b, 1e-9)
    )
    return (
        format_table(
            ["scheme", "rack batch instr (B)", "QoS viol.",
             "socket-a budget range"],
            rows,
        )
        + f"\nDynamic brokering: {gain:.2f}x the static split's rack work."
    )

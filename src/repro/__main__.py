"""``python -m repro`` dispatches to the CLI."""

import os
import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved Unix tool.  Re-point stdout at devnull so the
        # interpreter's shutdown flush does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    sys.exit(code)

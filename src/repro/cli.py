"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``describe``              — the simulated system (Table I)
* ``list-mixes``            — the paper's 50 evaluation mixes
* ``characterize``          — Fig. 1 service characterisation
* ``run``                   — run one policy on one mix and print the timeline
  (``--trace``/``--jsonl``/``--metrics``/``--decisions-csv`` export the
  run's telemetry, ``--faults SPEC`` injects faults,
  ``--decision-budget`` caps the decision loop's virtual-time budget,
  and ``--stop-after``/``--save-state``/``--resume-state`` pause and
  resume a run crash-safely; see docs/observability.md and
  docs/robustness.md)
* ``experiment``            — regenerate one paper table/figure by name
  (``--jobs``/``--checkpoint``/``--resume`` shard the fleet-enabled
  studies — ``cluster``, ``scalability``, ``fig5c``, ``fig8``,
  ``ablations`` — across worker processes; see docs/scaling.md)
* ``fleet``                 — the fleet execution surface: parallel
  ``cluster``/``scalability``/``report`` runs, plus ``status`` to
  inspect a checkpoint file (``--watch`` paints live fleet status to
  stderr mid-run; ``--jsonl`` writes the merged telemetry log)
* ``fault-study``           — hardened vs unhardened control under the
  default fault scenarios (docs/robustness.md); fleet-sharded with
  mix-qualified unit ids, so ``--jobs``/``--checkpoint``/``--resume``/
  ``--watch`` apply and one checkpoint covers a multi-mix sweep
* ``chaos``                 — the chaos/soak harness: kills and resumes
  runs mid-quantum, injects faults and deadline pressure, and asserts
  the robustness invariants (docs/robustness.md); exits 1 if any
  invariant broke
* ``report``                — run the full evaluation, write a markdown report
* ``telemetry-report``      — summarise a JSONL telemetry log
* ``top``                   — terminal status view of a JSONL telemetry
  log: rolling-window latency/power percentiles, QoS violations and
  fleet health (``--follow`` re-reads the log like ``top(1)``)
* ``dashboard``             — render a JSONL telemetry log into one
  self-contained HTML dashboard (inline SVG/CSS, no external assets)
* ``explain``               — render a run's per-quantum decision
  provenance (candidate sets, rejection reasons, budget meters, ladder
  rungs) as a human-readable "why" report (docs/observability.md)
* ``replay``                — re-execute one quantum from a crash-safe
  snapshot and byte-diff its provenance against the recorded log
  (the flight recorder's determinism cross-check)
* ``profile``               — deterministic virtual-cost profile of a
  run or JSONL log: top-N cost table, per-phase attribution, folded-
  stack (flamegraph.pl) and Chrome-trace export
* ``audit``                 — run one mix with the prediction-accuracy
  auditor attached: per-metric error percentiles against the oracle,
  EWMA drift flags, QoS-violation attribution (docs/observability.md)
* ``bench``                 — deterministic hot-path benchmarks; writes
  BENCH.json, and ``--compare BASELINE.json`` is the regression gate
* ``serve``                 — run the scheduler daemon: an asyncio
  control plane accepting live job submissions over NDJSON/TCP (plus a
  read-only HTTP status surface) and ticking the decision-quantum loop
  on a virtual-time clock (docs/server.md)
* ``submit``                — submit one job to a running daemon and
  print its admission record (exit 1 when rejected on the spot)
* ``status``                — query a running daemon's status: quantum
  position, admission accept/reject counters, queue depth, job table
* ``lint``                  — project-specific static analysis
  (determinism / RNG-stream / unit-invariant / telemetry rules; see
  docs/static-analysis.md)

``--verbose/-v`` (repeatable) raises logging of the ``repro.*``
hierarchy to INFO then DEBUG.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.logs import configure as configure_logging

from repro.baselines import (
    AsymmetricOraclePolicy,
    CoreGatingPolicy,
    FlickerPolicy,
    NoGatingPolicy,
    StaticAsymmetricPolicy,
)
from repro.core.oracle import OracleReconfigPolicy
from repro.core.runtime import CuttleSysPolicy
from repro.experiments.harness import (
    build_machine_for_mix,
    reference_power_for_mix,
    run_policy,
)
from repro.workloads.loadgen import LoadTrace
from repro.workloads.mixes import paper_mixes

POLICIES = {
    "cuttlesys": lambda machine, seed: CuttleSysPolicy.for_machine(
        machine, seed=seed
    ),
    "core-gating": lambda machine, seed: CoreGatingPolicy(),
    "core-gating+wp": lambda machine, seed: CoreGatingPolicy(
        way_partition=True
    ),
    "asymm-oracle": lambda machine, seed: AsymmetricOraclePolicy(),
    "asymm-50-50": lambda machine, seed: StaticAsymmetricPolicy(),
    "no-gating": lambda machine, seed: NoGatingPolicy(),
    "flicker": lambda machine, seed: FlickerPolicy(seed=seed),
    "oracle-reconfig": lambda machine, seed: OracleReconfigPolicy(seed=seed),
}

#: Policies that run on the reconfigurable machine variant.
RECONFIGURABLE_POLICIES = {"cuttlesys", "flicker", "oracle-reconfig"}

EXPERIMENTS = (
    "fig1", "fig5", "fig5c", "fig7", "fig8", "fig8a", "fig8b", "fig8c",
    "fig9", "fig10", "table2", "flicker", "dvfs", "ablations",
    "scalability", "bandwidth", "churn", "multi-service", "area", "cluster",
)


def _cmd_describe(args: argparse.Namespace) -> int:
    machine = build_machine_for_mix(paper_mixes()[0], seed=args.seed)
    print(machine.describe())
    print(f"reference max power: {machine.reference_max_power():.1f} W")
    return 0


def _cmd_list_mixes(args: argparse.Namespace) -> int:
    for i, mix in enumerate(paper_mixes()):
        apps = ", ".join(mix.batch_names[:5])
        print(f"{i:>2}  {mix.lc_name:<9} [{apps}, ...]")
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.experiments.fig1_characterization import render_fig1, run_fig1

    services = [args.service] if args.service else None
    print(render_fig1(run_fig1(services=services)))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    mixes = paper_mixes()
    if not 0 <= args.mix < len(mixes):
        print(f"error: mix index must be in [0, {len(mixes)})",
              file=sys.stderr)
        return 2
    if args.stop_after is not None and not args.save_state:
        print("error: --stop-after requires --save-state", file=sys.stderr)
        return 2
    if args.resume_state and args.stop_after is not None:
        print("error: --resume-state cannot combine with --stop-after",
              file=sys.stderr)
        return 2
    needs_cuttlesys = (
        args.decision_budget is not None
        or args.stop_after is not None
        or args.resume_state
    )
    if needs_cuttlesys and args.policy != "cuttlesys":
        print("error: --decision-budget/--stop-after/--resume-state "
              "require --policy cuttlesys", file=sys.stderr)
        return 2
    mix = mixes[args.mix]
    reference = reference_power_for_mix(mix, seed=args.seed)
    machine = build_machine_for_mix(
        mix, seed=args.seed,
        reconfigurable=args.policy in RECONFIGURABLE_POLICIES,
    )
    if args.decision_budget is not None:
        from repro.core.controller import ControllerConfig

        policy = CuttleSysPolicy.for_machine(
            machine, seed=args.seed,
            config=ControllerConfig(
                seed=args.seed, decision_budget=args.decision_budget
            ),
        )
    else:
        policy = POLICIES[args.policy](machine, args.seed)
    resume_state = None
    if args.resume_state:
        import json

        try:
            with open(args.resume_state) as handle:
                resume_state = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.resume_state}: {exc}",
                  file=sys.stderr)
            return 2
    faults = None
    if args.faults:
        from repro.faults import FaultInjector, FaultSpecError, parse_fault_spec

        try:
            specs = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        faults = FaultInjector(specs, seed=args.seed)
    telemetry = None
    wants_telemetry = (
        args.trace or args.jsonl or args.metrics or args.decisions_csv
    )
    if wants_telemetry:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    run = run_policy(
        machine,
        policy,
        LoadTrace.constant(args.load),
        power_cap_fraction=args.cap,
        n_slices=args.slices,
        max_power_w=reference,
        telemetry=telemetry,
        faults=faults,
        stop_after=args.stop_after,
        resume_state=resume_state,
    )
    if args.save_state:
        if run.resume_state is None:
            print("error: run completed without pausing; nothing to save "
                  "(--stop-after must fall inside the run)",
                  file=sys.stderr)
            return 2
        import json
        import os

        tmp = args.save_state + ".tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(run.resume_state, handle, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, args.save_state)
        except OSError as exc:
            print(f"error: cannot write {args.save_state}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"paused at quantum {args.stop_after}; wrote "
              f"{args.save_state} (resume with --resume-state)")
    qos = machine.lc_service.qos_latency_s
    print(f"mix {args.mix} ({mix.lc_name}), cap {args.cap:.0%}, "
          f"load {args.load:.0%}, budget {run.power_budget_w:.1f} W")
    print("slice  LC config      cores  p99/QoS  power (W)")
    for i, m in enumerate(run.measurements):
        a = m.assignment
        label = a.lc_config.label if a.lc_config else "-"
        print(f"{i:>5}  {label:<13} {a.lc_cores:>5}  "
              f"{m.lc_p99 / qos:>7.2f}  {m.total_power:>9.1f}")
    print(run.summary())
    if faults is not None:
        injected = ", ".join(
            f"{kind}={n}" for kind, n in sorted(faults.injected.items())
        ) or "none"
        print(f"faults injected: {injected} "
              f"({run.degraded_quanta} degraded quanta)")
    if telemetry is not None:
        try:
            if args.trace:
                n = telemetry.write_chrome_trace(args.trace)
                print(f"wrote {args.trace} ({n} trace events; open in "
                      f"chrome://tracing or ui.perfetto.dev)")
            if args.jsonl:
                n = telemetry.write_jsonl(args.jsonl)
                print(f"wrote {args.jsonl} ({n} lines)")
            if args.decisions_csv:
                n = telemetry.decisions_to_csv(args.decisions_csv)
                print(f"wrote {args.decisions_csv} ({n} quanta)")
        except OSError as exc:
            print(f"error: cannot write telemetry output: {exc}",
                  file=sys.stderr)
            return 2
        if args.metrics:
            print()
            print(telemetry.report())
    return 0


def _cmd_telemetry_report(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl, render_jsonl_report

    try:
        records = read_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    print(render_jsonl_report(records))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl
    from repro.telemetry.live import LiveAggregator, render_live_status

    def render_once() -> int:
        try:
            records = read_jsonl(args.log)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.log}: {exc}",
                  file=sys.stderr)
            return 2
        aggregator = LiveAggregator(window=args.window)
        aggregator.replay(records)
        print(render_live_status(aggregator))
        return 0

    if not args.follow:
        return render_once()
    # --follow re-reads the log on an interval, like top(1).  Wall
    # clock is fine here: the CLI surface sits outside the determinism
    # contract (cf. render_scalability's timing column).
    import time

    try:
        while True:
            print("\x1b[2J\x1b[H", end="")
            code = render_once()
            if code:
                return code
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl, render_dashboard

    try:
        records = read_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    html = render_dashboard(records, title=args.title)
    try:
        with open(args.out, "w") as handle:
            handle.write(html)
    except OSError as exc:
        print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
        return 2
    print(f"wrote {args.out} ({len(html)} bytes, self-contained)")
    return 0


def _watch_live(args: argparse.Namespace):
    """A ``LiveAggregator`` that repaints fleet status on stderr.

    Returns ``None`` unless ``--watch`` was given.  The live view goes
    to *stderr* so stdout stays byte-identical to a watch-less run —
    like the scalability table's timing column, the watch surface sits
    outside the determinism contract.
    """
    if not getattr(args, "watch", False):
        return None
    from repro.telemetry.live import LiveAggregator, render_live_status

    class _Watch(LiveAggregator):
        #: Events between stderr repaints (amortises terminal writes).
        _EVERY = 8

        def __init__(self) -> None:
            super().__init__()
            self._pending = 0

        def ingest_event(self, event) -> None:
            super().ingest_event(event)
            self._pending += 1
            if self._pending >= self._EVERY:
                self.repaint()

        def repaint(self) -> None:
            self._pending = 0
            print("\n" + render_live_status(self),
                  file=sys.stderr, flush=True)

    return _Watch()


def _write_jsonl_records(path: str, records: Sequence[dict]) -> None:
    import json

    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    print(f"wrote {path} ({len(records)} lines)")


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.telemetry import read_jsonl, render_explain
    from repro.telemetry.provenance import provenance_records_from_jsonl

    try:
        records = read_jsonl(args.log)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
        return 2
    provenance = provenance_records_from_jsonl(records)
    if not provenance:
        print(f"error: {args.log} carries no provenance records "
              f"(written by runs with telemetry attached)",
              file=sys.stderr)
        return 1
    if args.quantum is not None:
        provenance = [
            r for r in provenance if r.get("quantum") == args.quantum
        ]
        if not provenance:
            print(f"error: no provenance record for quantum "
                  f"{args.quantum}", file=sys.stderr)
            return 1
    print("\n\n".join(render_explain(record) for record in provenance))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.replay import (
        ReplayMismatch, diff_provenance, replay_quantum,
    )
    from repro.telemetry import read_jsonl
    from repro.telemetry.provenance import provenance_records_from_jsonl

    mixes = paper_mixes()
    if not 0 <= args.mix < len(mixes):
        print(f"error: mix index must be in [0, {len(mixes)})",
              file=sys.stderr)
        return 2
    try:
        with open(args.state) as handle:
            resume_state = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.state}: {exc}", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(args.jsonl)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.jsonl}: {exc}", file=sys.stderr)
        return 2
    recorded = next(
        (r for r in provenance_records_from_jsonl(records)
         if r.get("quantum") == args.quantum),
        None,
    )
    if recorded is None:
        print(f"error: {args.jsonl} has no provenance record for "
              f"quantum {args.quantum}", file=sys.stderr)
        return 1
    mix = mixes[args.mix]
    reference = reference_power_for_mix(mix, seed=args.seed)
    machine = build_machine_for_mix(mix, seed=args.seed)
    from repro.core.controller import ControllerConfig

    policy = CuttleSysPolicy.for_machine(
        machine, seed=args.seed,
        config=ControllerConfig(
            seed=args.seed, decision_budget=args.decision_budget
        ),
    )
    faults = None
    if args.faults:
        from repro.faults import FaultInjector, FaultSpecError, parse_fault_spec

        try:
            specs = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        faults = FaultInjector(specs, seed=args.seed)
    try:
        reproduced = replay_quantum(
            machine, policy, LoadTrace.constant(args.load), resume_state,
            args.quantum, power_cap_fraction=args.cap,
            max_power_w=reference, faults=faults,
        )
    except ReplayMismatch as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    differences = diff_provenance(recorded, reproduced)
    if differences:
        print(f"replay MISMATCH at quantum {args.quantum}:")
        print("\n".join(differences))
        return 1
    print(f"replay OK: quantum {args.quantum} reproduced "
          f"byte-identically from {args.state}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.telemetry.profiler import (
        render_phase_table,
        render_profile_table,
        write_folded,
        write_profile_chrome_trace,
    )

    if args.log:
        from repro.telemetry import read_jsonl
        from repro.telemetry.profiler import build_profile

        try:
            records = read_jsonl(args.log)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.log}: {exc}", file=sys.stderr)
            return 2
        root = build_profile(records)
        source = args.log
    else:
        # No log: profile a fixed-seed in-process run (the CI smoke
        # path).  Identical flags → identical operation counters.
        from repro.telemetry import Telemetry
        from repro.telemetry.profiler import profile_telemetry

        mixes = paper_mixes()
        if not 0 <= args.mix < len(mixes):
            print(f"error: mix index must be in [0, {len(mixes)})",
                  file=sys.stderr)
            return 2
        mix = mixes[args.mix]
        reference = reference_power_for_mix(mix, seed=args.seed)
        machine = build_machine_for_mix(mix, seed=args.seed)
        policy = CuttleSysPolicy.for_machine(machine, seed=args.seed)
        telemetry = Telemetry()
        run_policy(
            machine, policy, LoadTrace.constant(args.load),
            power_cap_fraction=args.cap, n_slices=args.slices,
            max_power_w=reference, telemetry=telemetry,
        )
        root = profile_telemetry(telemetry)
        source = (f"mix {args.mix}, {args.slices} quanta, "
                  f"seed {args.seed}")
    if not root.children:
        print("error: no spans to profile (was the log written with "
              "telemetry attached?)", file=sys.stderr)
        return 1
    try:
        if args.folded:
            n = write_folded(root, args.folded, weight=args.weight)
            print(f"wrote {args.folded} ({n} folded frames; feed to "
                  f"flamegraph.pl)", file=sys.stderr)
        if args.chrome:
            n = write_profile_chrome_trace(root, args.chrome)
            print(f"wrote {args.chrome} ({n} trace events)",
                  file=sys.stderr)
    except OSError as exc:
        print(f"error: cannot write profile output: {exc}",
              file=sys.stderr)
        return 2
    if args.ops_only:
        # Deterministic surface only: byte-identical across runs,
        # hosts and --jobs levels (the CI diff gates this).
        print(render_profile_table(root, top=args.top, ops_only=True))
        return 0
    print(f"profile of {source}")
    print()
    print(render_profile_table(root, top=args.top))
    print()
    print(render_phase_table(root))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.telemetry import Telemetry, render_accuracy_report

    mixes = paper_mixes()
    if not 0 <= args.mix < len(mixes):
        print(f"error: mix index must be in [0, {len(mixes)})",
              file=sys.stderr)
        return 2
    mix = mixes[args.mix]
    reference = reference_power_for_mix(mix, seed=args.seed)
    machine = build_machine_for_mix(mix, seed=args.seed)
    policy = CuttleSysPolicy.for_machine(machine, seed=args.seed)
    faults = None
    if args.faults:
        from repro.faults import FaultInjector, FaultSpecError, parse_fault_spec

        try:
            specs = parse_fault_spec(args.faults)
        except FaultSpecError as exc:
            print(f"error: bad --faults spec: {exc}", file=sys.stderr)
            return 2
        faults = FaultInjector(specs, seed=args.seed)
    telemetry = Telemetry()
    telemetry.enable_accuracy_audit()
    run = run_policy(
        machine,
        policy,
        LoadTrace.constant(args.load),
        power_cap_fraction=args.cap,
        n_slices=args.slices,
        max_power_w=reference,
        telemetry=telemetry,
        faults=faults,
    )
    print(f"mix {args.mix} ({mix.lc_name}), cap {args.cap:.0%}, "
          f"load {args.load:.0%}, {args.slices} quanta")
    print(run.summary())
    print()
    print(render_accuracy_report(telemetry))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchReport,
        case_names,
        compare_reports,
        render_comparison,
        render_report,
        run_bench,
    )

    if args.list:
        for name in case_names():
            print(name)
        return 0
    if args.input:
        try:
            current = BenchReport.read(args.input)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
            return 2
    else:
        try:
            current = run_bench(
                repeats=args.repeats, seed=args.seed, only=args.only,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(render_report(current))
    if args.out:
        try:
            current.write(args.out)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.out}")
    if args.compare:
        try:
            baseline = BenchReport.read(args.compare)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.compare}: {exc}",
                  file=sys.stderr)
            return 2
        comparison = compare_reports(
            current, baseline,
            threshold_pct=args.threshold,
            counters_only=args.counters_only,
        )
        print(render_comparison(comparison))
        return 0 if comparison.ok else 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    code = _fleet_flags_error(args)
    if code:
        return code
    name = args.name
    if name == "fig1":
        from repro.experiments.fig1_characterization import (
            render_fig1, run_fig1,
        )
        print(render_fig1(run_fig1()))
    elif name == "fig5":
        from repro.experiments.fig5_accuracy import (
            render_fig5, run_fig5a, run_fig5b,
        )
        print(render_fig5(run_fig5a(), run_fig5b()))
    elif name == "fig5c":
        from repro.experiments.fig5c_powercaps import (
            render_fig5c, run_fig5c,
        )
        print(render_fig5c(run_fig5c(
            n_slices=args.slices, seed=args.seed, jobs=args.jobs,
            checkpoint=args.checkpoint, resume=args.resume,
        )))
    elif name == "fig7":
        from repro.experiments.fig7_timeline import render_fig7, run_fig7
        print(render_fig7(run_fig7(n_slices=args.slices)))
    elif name == "fig8":
        from repro.experiments.fig8_dynamic import (
            SCENARIOS, render_fig8, run_fig8_grid,
        )
        traces = run_fig8_grid(
            seed=args.seed, jobs=args.jobs,
            checkpoint=args.checkpoint, resume=args.resume,
        )
        print("\n\n".join(
            render_fig8(traces[scenario]) for scenario in SCENARIOS
        ))
    elif name in ("fig8a", "fig8b", "fig8c"):
        from repro.experiments import fig8_dynamic
        runner = getattr(fig8_dynamic, f"run_{name}")
        print(fig8_dynamic.render_fig8(runner()))
    elif name == "fig9":
        from repro.experiments.fig9_sgd_vs_rbf import render_fig9, run_fig9
        print(render_fig9(run_fig9()))
    elif name == "fig10":
        from repro.experiments.fig10_dds_vs_ga import (
            render_fig10, run_fig10a, run_fig10b,
        )
        print(render_fig10(run_fig10a(), run_fig10b(n_slices=args.slices)))
    elif name == "table2":
        from repro.experiments.table2_overheads import (
            render_table2, run_table2, run_training_set_sensitivity,
        )
        print(render_table2(run_table2(), run_training_set_sensitivity()))
    elif name == "flicker":
        from repro.experiments.flicker_comparison import (
            render_flicker, run_flicker_qos, run_flicker_throughput,
        )
        print(render_flicker(run_flicker_qos(),
                             run_flicker_throughput(n_slices=args.slices)))
    elif name == "dvfs":
        from repro.experiments.dvfs_comparison import (
            render_dvfs_comparison, run_dvfs_comparison,
        )
        print("leakage x1.0:")
        print(render_dvfs_comparison(run_dvfs_comparison()))
        print("\nleakage x2.5:")
        print(render_dvfs_comparison(run_dvfs_comparison(leakage_scale=2.5)))
    elif name == "bandwidth":
        from repro.experiments.bandwidth_study import (
            render_bandwidth_study, run_bandwidth_study,
        )
        print(render_bandwidth_study(
            run_bandwidth_study(n_slices=args.slices)
        ))
    elif name == "cluster":
        from repro.experiments.cluster_study import (
            render_cluster_study, run_cluster_study,
        )
        print(render_cluster_study(
            run_cluster_study(
                n_slices=args.slices * 2, seed=args.seed,
                jobs=args.jobs, checkpoint=args.checkpoint,
                resume=args.resume,
            )
        ))
    elif name == "area":
        from repro.experiments.area_equivalence import (
            render_area_equivalence, run_area_equivalence,
        )
        print(render_area_equivalence(
            run_area_equivalence(n_slices=args.slices)
        ))
    elif name == "multi-service":
        from repro.experiments.multi_service import (
            render_multi_service, run_multi_service,
        )
        print(render_multi_service(
            run_multi_service(n_slices=args.slices * 2)
        ))
    elif name == "churn":
        from repro.experiments.churn_study import (
            render_churn_study, run_churn_study,
        )
        print(render_churn_study(run_churn_study(n_slices=args.slices * 2)))
    elif name == "scalability":
        from repro.experiments.scalability import (
            render_scalability, run_scalability,
        )
        print(render_scalability(
            run_scalability(
                n_slices=args.slices, seed=args.seed, jobs=args.jobs,
                checkpoint=args.checkpoint, resume=args.resume,
            ),
            include_timings=not args.no_timings,
        ))
    elif name == "ablations":
        from repro.experiments.ablations import (
            render_ablation_matrix, run_ablation_matrix,
        )
        print(render_ablation_matrix(run_ablation_matrix(
            n_slices=args.slices, seed=args.seed, jobs=args.jobs,
            checkpoint=args.checkpoint, resume=args.resume,
        )))
    else:  # pragma: no cover - argparse choices prevent this
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_fault_study(args: argparse.Namespace) -> int:
    from repro.experiments.fault_study import (
        render_fault_study, run_fault_study, study_totals,
    )
    from repro.faults import default_scenarios, scenario_by_name

    code = _fleet_flags_error(args)
    if code:
        return code
    if args.scenario:
        try:
            scenarios = tuple(
                scenario_by_name(name, seed=args.seed)
                for name in args.scenario
            )
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    else:
        scenarios = default_scenarios(args.seed)
    n_mixes = len(paper_mixes())
    for mix_index in args.mixes:
        if not 0 <= mix_index < n_mixes:
            print(f"error: mix index must be in [0, {n_mixes})",
                  file=sys.stderr)
            return 2
    # Unit ids are mix-qualified, so the whole multi-mix sweep is one
    # fleet run: one checkpoint file, one live aggregator, one table.
    live = _watch_live(args)
    outcomes = run_fault_study(
        mix_indices=args.mixes,
        cap=args.cap,
        load=args.load,
        n_slices=args.slices,
        seed=args.seed,
        scenarios=scenarios,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        live=live,
    )
    if live is not None:
        live.repaint()
    print(render_fault_study(outcomes))
    totals = study_totals(outcomes)
    hard = totals.get("hardened", {})
    if hard.get("aborted", 0):
        print("error: hardened controller aborted at least one run",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments.chaos_study import (
        render_chaos_study, run_chaos_study,
    )
    from repro.faults import default_scenarios

    code = _fleet_flags_error(args)
    if code:
        return code
    known = {s.name for s in default_scenarios(args.seed)}
    scenarios: list = []
    for name in args.scenarios:
        if name == "fault-free":
            scenarios.append(None)
        elif name in known:
            scenarios.append(name)
        else:
            options = ", ".join(sorted(known) + ["fault-free"])
            print(f"error: unknown scenario {name!r}; expected one of "
                  f"{options}", file=sys.stderr)
            return 2
    budgets: list = []
    for value in args.budgets:
        if value == "inf":
            budgets.append(None)
        else:
            try:
                budgets.append(int(value))
            except ValueError:
                print(f"error: --budgets takes integers or 'inf', "
                      f"got {value!r}", file=sys.stderr)
                return 2
    if args.slices < 2:
        print("error: --slices must be at least 2 (the kill point must "
              "fall inside the run)", file=sys.stderr)
        return 2
    live = _watch_live(args)
    merged = [] if (args.jsonl or live is not None) else None
    outcomes = run_chaos_study(
        seeds=tuple(args.seeds),
        mix_indices=tuple(args.mixes),
        scenarios=tuple(scenarios),
        budgets=tuple(budgets),
        n_slices=args.slices,
        cooldown=args.cooldown,
        load=args.load,
        cap=args.cap,
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        merged_telemetry=merged,
        live=live,
    )
    if live is not None:
        live.repaint()
    print(render_chaos_study(outcomes))
    if args.jsonl:
        _write_jsonl_records(args.jsonl, merged or [])
    return 0 if all(o.ok for o in outcomes) else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import (
        DEFAULT_CACHE_NAME,
        LintCache,
        build_program_context,
        describe_rules,
        lint_paths,
        render_graph,
        render_json,
        render_text,
    )

    if args.list_rules:
        print(describe_rules())
        return 0
    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        import repro

        paths = [Path(repro.__file__).resolve().parent]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache or DEFAULT_CACHE_NAME))
    violations = lint_paths(paths, cache=cache)
    if args.graph:
        program = build_program_context(paths)
        Path(args.graph).write_text(
            render_graph(program, args.graph), encoding="utf-8"
        )
        print(f"wrote call graph to {args.graph}", file=sys.stderr)
    print(render_json(violations) if args.json else render_text(violations))
    return 1 if violations else 0


def _cmd_report(args: argparse.Namespace) -> int:
    code = _fleet_flags_error(args)
    if code:
        return code
    from repro.experiments.full_eval import render_report, run_full_evaluation

    fleet_stats: dict = {}
    results = run_full_evaluation(
        n_slices=args.slices, only=args.only, jobs=args.jobs,
        checkpoint=args.checkpoint, resume=args.resume,
        fleet_stats=fleet_stats,
    )
    text = render_report(results, fleet_stats=fleet_stats)
    with open(args.out, "w") as handle:
        handle.write(text)
    failed = [r.title for r in results if r.error is not None]
    print(f"wrote {args.out} ({len(results)} sections)")
    if failed:
        print("failed sections: " + ", ".join(failed), file=sys.stderr)
        return 1
    return 0


def _fleet_flags_error(args: argparse.Namespace) -> int:
    """Validate the shared --jobs/--checkpoint/--resume flags.

    Returns 0 when consistent; prints to stderr and returns 2 otherwise
    (argparse cannot express the cross-flag dependency itself).
    """
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    return 0


def _server_port(args: argparse.Namespace) -> Optional[int]:
    """The daemon port from ``--port`` or ``--port-file``; None = error."""
    if args.port is not None:
        return args.port
    if args.port_file is not None:
        try:
            return int(open(args.port_file, encoding="utf-8").read().strip())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read port file: {exc}", file=sys.stderr)
            return None
    print("error: need --port or --port-file", file=sys.stderr)
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.admission import AdmissionLimits
    from repro.server.daemon import run_daemon
    from repro.server.driver import ServerConfig

    try:
        config = ServerConfig(
            host=args.host,
            port=args.port if args.port is not None else 0,
            port_file=args.port_file,
            mix=args.mix,
            seed=args.seed,
            power_cap_fraction=args.power_cap,
            max_quanta=args.max_quanta,
            real_time=args.real_time,
            quantum_s=args.quantum_s,
            state_path=args.state,
            decisions_path=args.decisions,
            snapshot_every=args.snapshot_every,
            resume=args.resume,
            whatif_jobs=args.whatif_jobs,
            limits=AdmissionLimits(
                max_jobs_per_tenant=args.max_jobs_per_tenant,
                max_wait_quanta=args.max_wait_quanta,
            ),
        )
        run_daemon(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.server.script import ScriptedClient

    port = _server_port(args)
    if port is None:
        return 2
    request = {"op": "submit", "kind": args.kind, "name": args.name,
               "tenant": args.tenant, "priority": args.priority}
    if args.qos_ms is not None:
        request["qos_ms"] = args.qos_ms
    if args.rps is not None:
        request["rps"] = args.rps
    try:
        with ScriptedClient(args.host, port, args.timeout) as client:
            response = client.request(request)
    except (OSError, ConnectionError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(response, indent=2, sort_keys=True))
    if not response.get("ok"):
        return 1
    return 1 if response["job"]["state"] == "rejected" else 0


def _cmd_status(args: argparse.Namespace) -> int:
    import json

    from repro.server.script import ScriptedClient

    port = _server_port(args)
    if port is None:
        return 2
    try:
        with ScriptedClient(args.host, port, args.timeout) as client:
            status = client.request({"op": "status"})
            jobs = client.request({"op": "jobs"})
    except (OSError, ConnectionError) as exc:
        print(f"error: cannot reach daemon: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(
            {"status": status, "jobs": jobs.get("jobs", [])},
            indent=2, sort_keys=True,
        ))
        return 0
    driver = status.get("driver", {})
    admission = status.get("admission", {})
    print(f"quantum:    {driver.get('quantum')}"
          f" / {driver.get('max_quanta')}")
    print(f"mix/policy: {driver.get('mix')} / {driver.get('policy')}")
    print(f"budget:     {driver.get('power_budget_w'):.1f} W")
    print(f"violations: qos={driver.get('qos_violations')} "
          f"power={driver.get('power_violations')} "
          f"degraded={driver.get('degraded_quanta')}")
    print(f"admission:  submitted={admission.get('submitted')} "
          f"admitted={admission.get('admitted')} "
          f"rejected={admission.get('rejected')} "
          f"cancelled={admission.get('cancelled')} "
          f"timed_out={admission.get('timed_out')}")
    print(f"queue:      {admission.get('queued')} waiting, "
          f"{admission.get('running')} running, "
          f"max wait {admission.get('max_wait_quanta_seen')} quanta")
    for job in jobs.get("jobs", []):
        print(f"  [{job['state']:9s}] {job['job_id']} "
              f"{job['kind']}:{job['name']} "
              f"tenant={job['tenant']} priority={job['priority']}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import CheckpointError, FleetError, inspect_checkpoint

    code = _fleet_flags_error(args)
    if code:
        return code
    try:
        if args.fleet_command == "status":
            import json

            payload = inspect_checkpoint(args.checkpoint_file)
            fingerprint = payload.get("fingerprint", {})
            completed = payload.get("completed", {})
            print(f"checkpoint: {args.checkpoint_file}")
            print(f"schema:     {payload.get('schema')}")
            print(f"fleet:      {fingerprint.get('fleet')}")
            print(f"seed:       {fingerprint.get('seed')}")
            print(f"context:    {json.dumps(fingerprint.get('context'), sort_keys=True)}")
            stats = payload.get("stats")
            if stats:
                print(f"stats:      {json.dumps(stats, sort_keys=True)}")
            units = fingerprint.get("units", [])
            print(f"completed:  {len(completed)}/{len(units)} unit(s)")
            # Checkpoints that predate `executed_ids` cannot tell a
            # freshly executed unit from a restored one; fall back to
            # the plain marker for those.
            executed_ids = (
                set(stats["executed_ids"])
                if stats and "executed_ids" in stats else None
            )
            for unit_id in units:
                if unit_id not in completed:
                    marker = "todo"
                elif executed_ids is not None and unit_id not in executed_ids:
                    marker = "done (checkpoint)"
                else:
                    marker = "done"
                print(f"  [{marker}] {unit_id}")
            return 0
        if args.fleet_command == "cluster":
            from repro.experiments.cluster_study import (
                render_cluster_study, run_cluster_study,
            )
            live = _watch_live(args)
            # Collecting the merged log whenever --watch is on makes
            # every watched run exercise the streaming-vs-post-hoc
            # equivalence self-check inside run_cluster_study.
            merged = [] if (args.jsonl or live is not None) else None
            results = run_cluster_study(
                n_slices=args.slices, seed=args.seed, jobs=args.jobs,
                checkpoint=args.checkpoint, resume=args.resume,
                merged_telemetry=merged, live=live,
            )
            if live is not None:
                live.repaint()
            print(render_cluster_study(results))
            if args.jsonl:
                _write_jsonl_records(args.jsonl, merged or [])
            return 0
        if args.fleet_command == "scalability":
            from repro.experiments.scalability import (
                render_scalability, run_scalability,
            )
            live = _watch_live(args)
            merged = [] if (args.jsonl or live is not None) else None
            points = run_scalability(
                core_counts=tuple(args.cores), n_slices=args.slices,
                seed=args.seed, jobs=args.jobs, checkpoint=args.checkpoint,
                resume=args.resume, merged_telemetry=merged, live=live,
            )
            if live is not None:
                live.repaint()
            print(render_scalability(
                points, include_timings=not args.no_timings
            ))
            if args.jsonl:
                _write_jsonl_records(args.jsonl, merged or [])
            return 0
        if args.fleet_command == "report":
            return _cmd_report(args)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FleetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(  # pragma: no cover - argparse prevents this
        f"unknown fleet command {args.fleet_command!r}"
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CuttleSys (MICRO 2020) reproduction toolkit",
    )
    parser.add_argument("--seed", type=int, default=7,
                        help="global random seed (default: 7)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="-v logs at INFO, -vv at DEBUG")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("describe", help="print the simulated system (Table I)")
    sub.add_parser("list-mixes", help="print the paper's 50 mixes")

    characterize = sub.add_parser(
        "characterize", help="Fig. 1 service characterisation"
    )
    characterize.add_argument("--service", default=None,
                              help="restrict to one service")

    run = sub.add_parser("run", help="run one policy on one mix")
    run.add_argument("--mix", type=int, default=0, help="mix index (0-49)")
    run.add_argument("--policy", choices=sorted(POLICIES), default="cuttlesys")
    run.add_argument("--cap", type=float, default=0.7,
                     help="power cap fraction (default 0.7)")
    run.add_argument("--load", type=float, default=0.8,
                     help="LC load fraction (default 0.8)")
    run.add_argument("--slices", type=int, default=10,
                     help="decision quanta to run (default 10)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write a Chrome trace_event JSON of the run")
    run.add_argument("--jsonl", default=None, metavar="PATH",
                     help="write the telemetry event log as JSON Lines")
    run.add_argument("--decisions-csv", default=None, metavar="PATH",
                     help="write per-quantum predicted-vs-measured CSV")
    run.add_argument("--metrics", action="store_true",
                     help="print the telemetry metrics report")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject faults, e.g. "
                     "'drop_sample:rate=0.2;cap_drop:magnitude=0.6,start=4' "
                     "(see docs/robustness.md)")
    run.add_argument("--decision-budget", type=int, default=None,
                     metavar="OPS",
                     help="virtual-time operation budget per decision "
                     "quantum; exhaustion walks the degradation ladder "
                     "(cuttlesys only; docs/robustness.md)")
    run.add_argument("--stop-after", type=int, default=None, metavar="K",
                     help="pause crash-safely after K quanta and write "
                     "the loop state to --save-state (cuttlesys only)")
    run.add_argument("--save-state", default=None, metavar="PATH",
                     help="where --stop-after writes the resume state")
    run.add_argument("--resume-state", default=None, metavar="PATH",
                     help="resume a run paused by --stop-after; other "
                     "flags must match the paused run")

    fault_study = sub.add_parser(
        "fault-study",
        help="hardened vs unhardened control under injected faults",
    )
    fault_study.add_argument("--mixes", type=int, nargs="+", default=[0],
                             help="mix indices to study (default: 0); "
                             "one --checkpoint covers the whole grid")
    fault_study.add_argument("--cap", type=float, default=0.7,
                             help="power cap fraction (default 0.7)")
    fault_study.add_argument("--load", type=float, default=0.7,
                             help="LC load fraction (default 0.7)")
    fault_study.add_argument("--slices", type=int, default=12,
                             help="decision quanta per run (default 12)")
    fault_study.add_argument("--scenario", nargs="*", default=None,
                             help="restrict to named default scenarios")

    def add_fleet_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes; output is byte-identical "
                       "to --jobs 1 (default 1; see docs/scaling.md)")
        p.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="snapshot completed work units to PATH")
        p.add_argument("--resume", action="store_true",
                       help="skip units already in --checkpoint")

    def add_watch_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--watch", action="store_true",
                       help="paint live fleet status to stderr while "
                       "the run streams (stdout stays byte-stable)")

    add_fleet_flags(fault_study)
    add_watch_flag(fault_study)

    chaos = sub.add_parser(
        "chaos",
        help="chaos/soak harness: kill/resume cycles, faults and "
        "deadline pressure vs the robustness invariants "
        "(docs/robustness.md)",
    )
    chaos.add_argument("--seeds", type=int, nargs="+", default=[7],
                       help="replayable seeds to soak (default: 7); "
                       "each seed also picks a different kill point")
    chaos.add_argument("--mixes", type=int, nargs="+", default=[0, 12],
                       help="mix indices to soak (default: 0 12)")
    chaos.add_argument("--scenarios", nargs="+",
                       default=["fault-free", "sensor-noise",
                                "perfect-storm"],
                       help="fault scenarios (default-scenario names "
                       "plus 'fault-free')")
    chaos.add_argument("--budgets", nargs="+", default=["inf", "2000"],
                       help="decision budgets in operations, or 'inf' "
                       "(default: inf 2000)")
    chaos.add_argument("--slices", type=int, default=10,
                       help="decision quanta per run (default 10)")
    chaos.add_argument("--cooldown", type=int, default=8,
                       help="fault-free quanta granted for safe-mode "
                       "exit (default 8)")
    chaos.add_argument("--load", type=float, default=0.7,
                       help="LC load fraction (default 0.7)")
    chaos.add_argument("--cap", type=float, default=0.7,
                       help="power cap fraction (default 0.7)")
    chaos.add_argument("--jsonl", default=None, metavar="PATH",
                       help="write the per-cell telemetry, merged into "
                       "one canonical JSONL session log")
    add_fleet_flags(chaos)
    add_watch_flag(chaos)

    experiment = sub.add_parser(
        "experiment", help="regenerate one paper table/figure"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)
    experiment.add_argument("--slices", type=int, default=8,
                            help="quanta for run-based experiments")
    add_fleet_flags(experiment)
    experiment.add_argument("--no-timings", action="store_true",
                            help="drop wall-clock columns from the "
                            "scalability table (byte-stable output)")

    report = sub.add_parser(
        "report", help="run the full evaluation and write a markdown report"
    )
    report.add_argument("--out", default="evaluation_report.md",
                        help="output path (default: evaluation_report.md)")
    report.add_argument("--slices", type=int, default=8,
                        help="quanta for run-based experiments")
    report.add_argument("--only", nargs="*", default=None,
                        help="substring filters on section titles")
    add_fleet_flags(report)

    fleet = sub.add_parser(
        "fleet",
        help="deterministic parallel fleet runs (docs/scaling.md)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_cluster = fleet_sub.add_parser(
        "cluster", help="rack-level brokering study, sharded by scheme"
    )
    fleet_cluster.add_argument("--slices", type=int, default=8,
                               help="decision quanta (default 8)")
    fleet_cluster.add_argument("--jsonl", default=None, metavar="PATH",
                               help="write the per-unit telemetry, merged "
                               "into one canonical JSONL session log")
    add_fleet_flags(fleet_cluster)
    add_watch_flag(fleet_cluster)

    fleet_scale = fleet_sub.add_parser(
        "scalability", help="scaling grid, sharded by (cores, arm)"
    )
    fleet_scale.add_argument("--cores", type=int, nargs="+",
                             default=[16, 32, 48],
                             help="machine sizes (default: 16 32 48)")
    fleet_scale.add_argument("--slices", type=int, default=8,
                             help="decision quanta (default 8)")
    fleet_scale.add_argument("--no-timings", action="store_true",
                             help="drop the wall-clock decision (ms) "
                             "column (byte-stable output)")
    fleet_scale.add_argument("--jsonl", default=None, metavar="PATH",
                             help="write the per-unit telemetry, merged "
                             "into one canonical JSONL session log")
    add_fleet_flags(fleet_scale)
    add_watch_flag(fleet_scale)

    fleet_report = fleet_sub.add_parser(
        "report", help="full evaluation, sharded by section"
    )
    fleet_report.add_argument("--out", default="evaluation_report.md",
                              help="output path")
    fleet_report.add_argument("--slices", type=int, default=8,
                              help="quanta for run-based experiments")
    fleet_report.add_argument("--only", nargs="*", default=None,
                              help="substring filters on section titles")
    add_fleet_flags(fleet_report)

    fleet_status = fleet_sub.add_parser(
        "status", help="inspect a fleet checkpoint file"
    )
    fleet_status.add_argument("checkpoint_file", metavar="CHECKPOINT",
                              help="checkpoint written by --checkpoint")

    telemetry_report = sub.add_parser(
        "telemetry-report", help="summarise a JSONL telemetry log"
    )
    telemetry_report.add_argument("log", help="JSONL log written by "
                                  "`run --jsonl` or Telemetry.write_jsonl")

    top = sub.add_parser(
        "top",
        help="terminal status view of a JSONL telemetry log "
        "(docs/observability.md)",
    )
    top.add_argument("log", help="JSONL log written by `run --jsonl` "
                     "or `fleet ... --jsonl`")
    top.add_argument("--follow", action="store_true",
                     help="re-read the log on an interval, like top(1)")
    top.add_argument("--interval", type=float, default=2.0,
                     metavar="SECONDS",
                     help="--follow refresh interval (default 2.0)")
    top.add_argument("--window", type=int, default=256,
                     help="rolling-window size in quanta (default 256)")

    dashboard = sub.add_parser(
        "dashboard",
        help="render a JSONL telemetry log into one self-contained "
        "HTML dashboard",
    )
    dashboard.add_argument("log", help="JSONL log written by "
                           "`run --jsonl` or `fleet ... --jsonl`")
    dashboard.add_argument("-o", "--out", default="dashboard.html",
                           help="output path (default: dashboard.html)")
    dashboard.add_argument("--title", default="repro run dashboard",
                           help="dashboard page title")

    explain = sub.add_parser(
        "explain",
        help="render a run's per-quantum decision provenance as a "
        "human-readable 'why' report (docs/observability.md)",
    )
    explain.add_argument("log", help="JSONL log written by `run --jsonl` "
                         "or `fleet ... --jsonl`")
    explain.add_argument("--quantum", type=int, default=None, metavar="N",
                         help="restrict to one quantum "
                         "(default: every recorded quantum)")

    replay = sub.add_parser(
        "replay",
        help="re-execute one quantum from a crash-safe snapshot and "
        "byte-diff its provenance against the recorded log",
    )
    replay.add_argument("--state", required=True, metavar="PATH",
                        help="resume state written by "
                        "`run --stop-after K --save-state PATH`")
    replay.add_argument("--jsonl", required=True, metavar="PATH",
                        help="JSONL log of the full (uninterrupted) run")
    replay.add_argument("--quantum", type=int, required=True, metavar="N",
                        help="quantum to reproduce (>= the snapshot's "
                        "pause point)")
    replay.add_argument("--mix", type=int, default=0,
                        help="mix index of the original run (default 0)")
    replay.add_argument("--cap", type=float, default=0.7,
                        help="power cap fraction of the original run")
    replay.add_argument("--load", type=float, default=0.8,
                        help="LC load fraction of the original run")
    replay.add_argument("--decision-budget", type=int, default=None,
                        metavar="OPS",
                        help="decision budget of the original run")
    replay.add_argument("--faults", default=None, metavar="SPEC",
                        help="fault spec of the original run")

    profile = sub.add_parser(
        "profile",
        help="deterministic virtual-cost profile: top-N cost table, "
        "phase attribution, flame-graph export",
    )
    profile.add_argument("log", nargs="?", default=None,
                         help="JSONL log to profile (default: profile a "
                         "fixed-seed in-process run)")
    profile.add_argument("--mix", type=int, default=0,
                         help="mix index for the in-process run")
    profile.add_argument("--cap", type=float, default=0.7,
                         help="power cap fraction for the in-process run")
    profile.add_argument("--load", type=float, default=0.8,
                         help="LC load fraction for the in-process run")
    profile.add_argument("--slices", type=int, default=3,
                         help="quanta for the in-process run (default 3)")
    profile.add_argument("--top", type=int, default=15,
                         help="rows in the top-costs table (default 15)")
    profile.add_argument("--ops-only", action="store_true",
                         help="print only the deterministic operation-"
                         "counter table (byte-identical across runs "
                         "and --jobs levels; what CI diffs)")
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="write flamegraph.pl-compatible folded "
                         "stacks")
    profile.add_argument("--weight", default="exclusive_us",
                         choices=["exclusive_us", "ops", "count"],
                         help="folded-stack weight (default: "
                         "exclusive_us; 'ops' is deterministic)")
    profile.add_argument("--chrome", default=None, metavar="PATH",
                         help="write the merged call tree as a Chrome "
                         "trace_event JSON")

    audit = sub.add_parser(
        "audit",
        help="run one mix with the prediction-accuracy auditor attached",
    )
    audit.add_argument("--mix", type=int, default=0, help="mix index (0-49)")
    audit.add_argument("--cap", type=float, default=0.7,
                       help="power cap fraction (default 0.7)")
    audit.add_argument("--load", type=float, default=0.8,
                       help="LC load fraction (default 0.8)")
    audit.add_argument("--slices", type=int, default=10,
                       help="decision quanta to run (default 10)")
    audit.add_argument("--faults", default=None, metavar="SPEC",
                       help="inject faults while auditing "
                       "(same spec syntax as `run --faults`)")

    bench = sub.add_parser(
        "bench",
        help="deterministic hot-path benchmarks + regression gate",
    )
    bench.add_argument("--repeats", type=int, default=5,
                       help="timed repeats per case (default 5; "
                       "comparisons use the median)")
    bench.add_argument("--only", nargs="+", default=None, metavar="CASE",
                       help="restrict to named cases (see --list)")
    bench.add_argument("--list", action="store_true",
                       help="list the benchmark case names and exit")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="write the BENCH.json report")
    bench.add_argument("--input", default=None, metavar="PATH",
                       help="load a previously written BENCH.json instead "
                       "of re-running (for gating an existing artifact)")
    bench.add_argument("--compare", default=None, metavar="BASELINE",
                       help="compare against a baseline BENCH.json; "
                       "exit 1 on regression")
    bench.add_argument("--threshold", type=float, default=10.0,
                       metavar="PCT",
                       help="regression threshold percent (default 10)")
    bench.add_argument("--counters-only", action="store_true",
                       help="compare only operation counters "
                       "(machine-independent; what CI uses)")

    serve = sub.add_parser(
        "serve",
        help="run the scheduler daemon (docs/server.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port (default: ephemeral; see --port-file)")
    serve.add_argument("--port-file", default=None, metavar="PATH",
                       help="write the bound port here once listening")
    serve.add_argument("--mix", type=int, default=0,
                       help="paper mix index (default: 0)")
    serve.add_argument("--power-cap", type=float, default=0.7,
                       help="power budget as a fraction of the reference "
                       "(default: 0.7)")
    serve.add_argument("--max-quanta", type=int, default=100000,
                       help="hard ceiling on quanta served")
    serve.add_argument("--real-time", action="store_true",
                       help="tick every --quantum-s wall seconds instead "
                       "of on client 'tick' requests (outside the "
                       "determinism contract)")
    serve.add_argument("--quantum-s", type=float, default=0.1,
                       help="wall seconds per quantum under --real-time")
    serve.add_argument("--state", default=None, metavar="PATH",
                       help="crash-safe snapshot file (enables resume)")
    serve.add_argument("--decisions", default=None, metavar="PATH",
                       help="append the decision stream here as JSONL")
    serve.add_argument("--snapshot-every", type=int, default=1,
                       help="ticks between snapshots (default: 1)")
    serve.add_argument("--resume", action="store_true",
                       help="resume from --state if it exists")
    serve.add_argument("--whatif-jobs", type=int, default=2,
                       help="keep-alive worker pool size for what-if "
                       "probes (default: 2)")
    serve.add_argument("--max-jobs-per-tenant", type=int, default=8)
    serve.add_argument("--max-wait-quanta", type=int, default=16)

    submit = sub.add_parser(
        "submit",
        help="submit one job to a running daemon",
    )
    status = sub.add_parser(
        "status",
        help="query a running daemon's status and job table",
    )
    for client_parser in (submit, status):
        client_parser.add_argument("--host", default="127.0.0.1")
        client_parser.add_argument("--port", type=int, default=None)
        client_parser.add_argument("--port-file", default=None,
                                   metavar="PATH",
                                   help="read the daemon port from here")
        client_parser.add_argument("--timeout", type=float, default=30.0)
    submit.add_argument("--kind", choices=("lc", "batch"), required=True)
    submit.add_argument("--name", required=True,
                        help="LC service or batch application name")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--qos-ms", type=float, default=None,
                        help="target p99 latency (LC; default: the "
                        "service's calibrated target)")
    submit.add_argument("--rps", type=float, default=None,
                        help="offered arrival rate (LC jobs)")
    status.add_argument("--json", action="store_true",
                        help="emit the raw status/jobs JSON")

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (docs/static-analysis.md)",
    )
    lint.add_argument("paths", nargs="*", metavar="PATH",
                      help="files/directories to lint "
                      "(default: the installed repro package)")
    lint.add_argument("--json", action="store_true",
                      help="emit a machine-readable JSON report")
    lint.add_argument("--list-rules", action="store_true",
                      help="describe every rule and the suppression syntax")
    lint.add_argument("--graph", default=None, metavar="PATH",
                      help="export the whole-program call graph "
                      "(Graphviz DOT for .dot/.gv suffixes, else JSON)")
    lint.add_argument("--cache", default=None, metavar="PATH",
                      help="lint result cache file (default: "
                      ".repro-lint-cache.json in the working directory)")
    lint.add_argument("--no-cache", action="store_true",
                      help="bypass the content-hash result cache")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        configure_logging(args.verbose)
    handlers = {
        "describe": _cmd_describe,
        "report": _cmd_report,
        "list-mixes": _cmd_list_mixes,
        "characterize": _cmd_characterize,
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "fault-study": _cmd_fault_study,
        "chaos": _cmd_chaos,
        "telemetry-report": _cmd_telemetry_report,
        "top": _cmd_top,
        "dashboard": _cmd_dashboard,
        "explain": _cmd_explain,
        "replay": _cmd_replay,
        "profile": _cmd_profile,
        "audit": _cmd_audit,
        "bench": _cmd_bench,
        "lint": _cmd_lint,
        "fleet": _cmd_fleet,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Blessed random-stream derivation for the whole project.

Exact replay (docs/robustness.md) requires that every random stream in
the system be (a) explicitly seeded and (b) derived the same way
everywhere, so that adding a consumer never shifts another consumer's
draws.  :func:`rng_for` is the single sanctioned way to mint a new
:class:`numpy.random.Generator` from a name: the stream is keyed on a
CRC-32 of ``salt:name`` mixed with an integer ``seed``, which is stable
across processes, platforms, and Python hash randomisation.

The RNG-hygiene lint rules (``RNG201`` in docs/static-analysis.md)
treat this helper as the one allowed constructor pattern: functions
that *accept* an ``rng`` parameter must draw from it rather than mint
a fresh generator mid-stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["rng_for"]


def rng_for(name: str, salt: str = "", seed: int = 0) -> np.random.Generator:
    """Deterministic per-name generator (stable across processes).

    ``name`` identifies the consumer (an app, a service, a study);
    ``salt`` namespaces independent uses of the same name so their
    streams never collide; ``seed`` folds in a user-chosen global seed.
    Two calls with equal ``(name, salt, seed)`` yield identical
    streams; differing in any component yields independent streams.
    """
    key = f"{salt}:{name}" if salt else name
    stream = (seed * 8191 + zlib.crc32(key.encode("utf-8"))) % (2**32)
    return np.random.default_rng(stream)

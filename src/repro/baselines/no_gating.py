"""No-gating baseline: everything wide open, no cache partitioning.

The normalisation baseline of Fig. 5c — all cores run the widest
{6,6,6} configuration with an unpartitioned LLC and the power budget is
ignored.  On fixed-core machines this is simply "the multicore with no
power management".
"""

from __future__ import annotations

from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.sim.machine import Assignment, Machine, SliceMeasurement


class NoGatingPolicy:
    """All cores at {6,6,6}; the budget is not enforced."""

    name = "no-gating"
    overhead_fraction = 0.0

    def __init__(self, lc_cores: int = 16) -> None:
        if lc_cores < 0:
            raise ValueError("lc_cores must be non-negative")
        self.lc_cores = lc_cores

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Widest configuration everywhere, shared LLC."""
        widest = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
        return Assignment(
            lc_cores=self.lc_cores if machine.lc_service is not None else 0,
            lc_config=widest,
            batch_configs=tuple(widest for _ in machine.batch_profiles),
            shared_llc=True,
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """No state to update."""

"""Core-level gating baseline (paper §VII-B).

Fixed {6,6,6} cores with per-core power gating (C6): to meet the power
budget, whole cores hosting batch jobs are turned off.  The cores
running the latency-critical service are never gated.  The policy
profiles every job for one 1 ms sample to estimate power, then gates in
**descending order of power** — the ordering the paper found best among
the four it explored (descending/ascending power, BIPS/W, BIPS).  When
turning off the last core needed to meet the budget, it searches the
active cores for the one that meets the budget with the smallest slack.

The ``way_partition`` variant adds UCP-style LLC way partitioning
[Qureshi & Patt]: ways are granted greedily by marginal miss-rate
utility, which the partitioning hardware measures online.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence

import numpy as np

from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.sim.machine import Assignment, Machine, SliceMeasurement
from repro.sim.perf import AppProfile


class GatingOrder(enum.Enum):
    """Core-selection orderings explored in §VII-B."""

    DESCENDING_POWER = "descending_power"
    ASCENDING_POWER = "ascending_power"
    ASCENDING_BIPS_PER_WATT = "ascending_bips_per_watt"
    ASCENDING_BIPS = "ascending_bips"


def ucp_way_allocation(
    profiles: Sequence[AppProfile],
    way_budget: float,
    allocs: Sequence[float] = CACHE_ALLOCS,
) -> List[float]:
    """Greedy utility-based way partitioning over the discrete allocs.

    Starts every job at the smallest allocation and repeatedly upgrades
    the job with the highest marginal MPKI reduction per extra way,
    while the budget lasts — the lookahead algorithm of UCP restricted
    to CuttleSys's allocation levels.
    """
    if way_budget <= 0:
        raise ValueError("way_budget must be positive")
    levels = sorted(allocs)
    current = [0] * len(profiles)  # index into levels per job
    used = levels[0] * len(profiles)
    if used > way_budget:
        raise ValueError(
            f"cannot give {len(profiles)} jobs even {levels[0]} ways "
            f"within a budget of {way_budget}"
        )
    while True:
        best_job = -1
        best_gain = 0.0
        best_cost = 0.0
        for j, profile in enumerate(profiles):
            if current[j] + 1 >= len(levels):
                continue
            here = levels[current[j]]
            there = levels[current[j] + 1]
            cost = there - here
            if used + cost > way_budget + 1e-9:
                continue
            gain = profile.miss_curve.utility(here, there) / cost
            if gain > best_gain:
                best_gain = gain
                best_job = j
                best_cost = cost
        if best_job < 0:
            break
        current[best_job] += 1
        used += best_cost
    return [levels[i] for i in current]


class CoreGatingPolicy:
    """Per-core power gating on a fixed-core multicore."""

    def __init__(
        self,
        way_partition: bool = False,
        order: GatingOrder = GatingOrder.DESCENDING_POWER,
        lc_cores: int = 16,
        lc_ways: float = CACHE_ALLOCS[-1],
    ) -> None:
        self.way_partition = way_partition
        self.order = order
        self.lc_cores = lc_cores
        self.lc_ways = lc_ways
        self.name = "core-gating+wp" if way_partition else "core-gating"
        # One 1 ms profiling sample per quantum (§VII-B).
        self.overhead_fraction = 0.011

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Gate batch cores until the measured power fits the budget."""
        widest = CoreConfig.widest()
        n_jobs = len(machine.batch_profiles)
        if self.way_partition:
            budget = machine.params.llc_ways - self.lc_ways
            ways = ucp_way_allocation(machine.batch_profiles, budget)
        else:
            ways = [CACHE_ALLOCS[0]] * n_jobs  # ignored under shared_llc
        joints = [JointConfig(widest, w) for w in ways]

        # One profiling sample at the (only) fixed configuration.
        sample = machine.profile(load)
        power = sample.batch_power_hi.copy()
        bips = sample.batch_bips_hi
        lc_power = sample.lc_power_hi * self.lc_cores

        keep = self._select_active(
            power, bips, lc_power + machine.power.llc_power(), max_power,
            machine.power.gated_core_power(),
        )
        configs: List[Optional[JointConfig]] = [
            joints[j] if keep[j] else None for j in range(n_jobs)
        ]
        return Assignment(
            lc_cores=self.lc_cores,
            lc_config=JointConfig(widest, self.lc_ways),
            batch_configs=tuple(configs),
            shared_llc=not self.way_partition,
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """No cross-quantum state (each quantum re-profiles)."""

    # ------------------------------------------------------------------

    def _gating_priority(self, power: np.ndarray, bips: np.ndarray) -> np.ndarray:
        """Job indices in the order they should be gated."""
        if self.order is GatingOrder.DESCENDING_POWER:
            return np.argsort(-power)
        if self.order is GatingOrder.ASCENDING_POWER:
            return np.argsort(power)
        if self.order is GatingOrder.ASCENDING_BIPS_PER_WATT:
            return np.argsort(bips / np.maximum(power, 1e-9))
        return np.argsort(bips)

    def _select_active(
        self,
        power: np.ndarray,
        bips: np.ndarray,
        reserved: float,
        max_power: float,
        gated_residual: float,
    ) -> np.ndarray:
        """Boolean keep-mask after gating to meet the budget."""
        n_jobs = power.size
        keep = np.ones(n_jobs, dtype=bool)

        def total() -> float:
            return float(
                power[keep].sum() + (~keep).sum() * gated_residual + reserved
            )

        priority = list(self._gating_priority(power, bips))
        gated: List[int] = []
        while total() > max_power and keep.any():
            victim = next((j for j in priority if keep[j]), None)
            if victim is None:
                break
            keep[victim] = False
            gated.append(victim)
        # Smallest-slack refinement for the last gated core (§VII-B):
        # try swapping it for a cheaper job that still meets the budget.
        if gated and keep.any():
            last = gated[-1]
            keep[last] = True
            candidates = [
                j for j in np.argsort(power) if keep[j]
            ]
            for j in candidates:
                keep[j] = False
                if total() <= max_power:
                    break
                keep[j] = True
            else:
                keep[last] = False
        return keep

"""Baseline policies the paper compares CuttleSys against (§VII-B/C, §VIII-E).

* :class:`NoGatingPolicy` — all cores at the widest configuration, no
  cache partitioning (the normalisation baseline of Fig. 5c).
* :class:`CoreGatingPolicy` — fixed {6,6,6} cores with per-core power
  gating (C6), cores turned off in descending power order to meet the
  budget, optionally with LLC way partitioning.
* :class:`AsymmetricOraclePolicy` — an oracle-like big.LITTLE multicore
  that picks the optimal number of big/small cores per timeslice.
* :class:`StaticAsymmetricPolicy` — a realistic fixed 50/50 big.LITTLE.
* :class:`FlickerPolicy` — Flicker's 3MM3 + RBF estimation and GA
  search, in both evaluation methodologies of §VIII-E.
"""

from repro.baselines.asymmetric import AsymmetricOraclePolicy, StaticAsymmetricPolicy
from repro.baselines.core_gating import CoreGatingPolicy, GatingOrder
from repro.baselines.flicker import FlickerMethod, FlickerPolicy
from repro.baselines.no_gating import NoGatingPolicy

__all__ = [
    "AsymmetricOraclePolicy",
    "CoreGatingPolicy",
    "FlickerMethod",
    "FlickerPolicy",
    "GatingOrder",
    "NoGatingPolicy",
    "StaticAsymmetricPolicy",
]

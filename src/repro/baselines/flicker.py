"""Flicker baseline (Petrica et al., ISCA'13; compared in §VIII-E).

Flicker manages multiprogrammed *batch* mixes on reconfigurable cores:
it profiles each application on nine configurations chosen by a 3MM3
(three-level) design, fits RBF surrogates to predict throughput and
power on the remaining configurations, and searches the space with a
genetic algorithm.  It does not partition the LLC and has no notion of
tail latency, which is exactly why the paper finds it unsuitable for
latency-critical colocation.

Two evaluation methodologies from §VIII-E:

* ``FlickerMethod.PROFILE_ALL`` (the paper's method *a*): every core —
  including the LC service's — cycles through the nine 10 ms profiling
  configurations, then runs 2 ms of GA and 8 ms of steady state.  The
  LC service spends most of the slice in low configurations and
  violates QoS by an order of magnitude.
* ``FlickerMethod.PIN_LC`` (method *b*): the LC cores are pinned to
  {6,6,6} (shrinking the batch power budget) and only batch cores are
  profiled, 1 ms per sample.  QoS violations drop to ~1.5x, still
  present because the service is never given a latency-aware
  configuration or cache isolation.

The policy reuses :class:`repro.core.rbf.RBFSurrogate` (3MM3 + RBF) and
:class:`repro.core.ga.GeneticSearch`, searching the 27 core
configurations per job (no cache dimension).
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from repro.core.ga import GAParams, GeneticSearch
from repro.core.objective import SystemObjective
from repro.core.rbf import RBFSurrogate, l9_sample_configs
from repro.sim.coreconfig import (
    CACHE_ALLOCS,
    N_CORE_CONFIGS,
    CoreConfig,
    JointConfig,
)
from repro.sim.machine import Assignment, Machine, SliceMeasurement


class FlickerMethod(enum.Enum):
    """The two Flicker evaluation methodologies of §VIII-E."""

    PROFILE_ALL = "profile_all"  # method (a): 9 x 10 ms samples, all cores
    PIN_LC = "pin_lc"            # method (b): LC pinned wide, 9 x 1 ms


class FlickerPolicy:
    """Flicker's 3MM3 + RBF + GA pipeline as a harness policy."""

    def __init__(
        self,
        method: FlickerMethod = FlickerMethod.PIN_LC,
        lc_cores: int = 16,
        ga: GAParams = GAParams(),
        seed: int = 0,
    ) -> None:
        self.method = method
        self.lc_cores = lc_cores
        self._searcher = GeneticSearch(ga)
        self._rng = np.random.default_rng(seed)
        self.name = f"flicker-{method.value}"
        if method is FlickerMethod.PROFILE_ALL:
            # 9 x 10 ms profiling + 2 ms GA out of every 100 ms: only
            # 8 ms of each slice runs the chosen configuration.
            self.overhead_fraction = 0.40
        else:
            # 9 x 1 ms profiling + 2 ms GA.
            self.overhead_fraction = 0.11
        self._last_x: Optional[np.ndarray] = None

    #: Fraction of the slice spent in each profiling configuration
    #: (used by the QoS analysis of the Flicker experiment).
    def profiling_fractions(self) -> List[float]:
        """Per-sample slice fractions for the active method."""
        if self.method is FlickerMethod.PROFILE_ALL:
            return [0.10] * 9  # 9 x 10 ms of a 100 ms slice
        return [0.01] * 9  # 9 x 1 ms

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Profile 9 configs, fit RBF surrogates, search with GA."""
        n_jobs = len(machine.batch_profiles)
        sample_cores = l9_sample_configs()
        sample_joints = [JointConfig(c, CACHE_ALLOCS[0]) for c in sample_cores]
        bips_s, power_s, _ = machine.profile_configs(sample_joints, load)
        sample_idx = [j.index for j in sample_joints]

        # Per-job surrogates over the 27 core configurations (evaluated
        # at the sampling cache point; the LLC is unpartitioned).
        core_joint_idx = [
            JointConfig(CoreConfig.from_index(c), CACHE_ALLOCS[0]).index
            for c in range(N_CORE_CONFIGS)
        ]
        bips_hat = np.empty((n_jobs, N_CORE_CONFIGS))
        power_hat = np.empty((n_jobs, N_CORE_CONFIGS))
        for j in range(n_jobs):
            bips_hat[j] = (
                RBFSurrogate(log_space=True)
                .fit(sample_idx, bips_s[:, j])
                .predict(core_joint_idx)
            )
            power_hat[j] = (
                RBFSurrogate(log_space=True)
                .fit(sample_idx, power_s[:, j])
                .predict(core_joint_idx)
            )

        lc_joint = JointConfig(CoreConfig.widest(), CACHE_ALLOCS[-1])
        lc_power = machine.true_lc_power(lc_joint, load, self.lc_cores)
        reserved = lc_power * self.lc_cores + machine.power.llc_power()

        objective = SystemObjective(
            bips=bips_hat,
            power=power_hat,
            max_power=max_power,
            max_ways=machine.params.llc_ways,
            reserved_power=reserved,
            ways_by_config=np.zeros(N_CORE_CONFIGS),
        )
        result = self._searcher.search(
            objective,
            n_dims=n_jobs,
            n_confs=N_CORE_CONFIGS,
            rng=self._rng,
            initial=self._last_x,
        )
        x = result.best_x
        self._last_x = x.copy()

        configs: List[Optional[JointConfig]] = [
            JointConfig(CoreConfig.from_index(int(c)), CACHE_ALLOCS[0])
            for c in x
        ]
        # Flicker's own fallback: gate in descending predicted power.
        def total() -> float:
            acc = reserved
            for j, cfg in enumerate(configs):
                if cfg is None:
                    acc += machine.power.gated_core_power()
                else:
                    acc += power_hat[j, cfg.core.index]
            return acc

        while total() > max_power:
            active = [j for j, cfg in enumerate(configs) if cfg is not None]
            if not active:
                break
            victim = max(active, key=lambda j: power_hat[j, configs[j].core.index])
            configs[victim] = None

        return Assignment(
            lc_cores=self.lc_cores,
            lc_config=lc_joint,
            batch_configs=tuple(configs),
            shared_llc=True,
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """Flicker re-profiles every quantum; nothing to carry over."""

"""Asymmetric (big.LITTLE) multicore baselines (paper §VII-C).

Big cores are fixed {6,6,6}, small cores fixed {2,2,2}; the LLC is
way-partitioned like the other fixed-core baselines.

* :class:`AsymmetricOraclePolicy` is deliberately unrealistic: it reads
  the machine's *true* metrics, picks per timeslice the optimal number
  of big and small cores (and the job-to-core-type mapping) that meets
  QoS and maximises batch gmean throughput under the budget, and pays
  no migration or scheduling overheads.
* :class:`StaticAsymmetricPolicy` is the realistic fixed design: half
  the cores big, half small; the LC service runs on the big half, batch
  jobs on the small half, with core gating for the power budget.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.core_gating import ucp_way_allocation
from repro.sim.coreconfig import CACHE_ALLOCS, CoreConfig, JointConfig
from repro.sim.machine import Assignment, Machine, SliceMeasurement

BIG = CoreConfig.widest()
SMALL = CoreConfig.narrowest()


class AsymmetricOraclePolicy:
    """Oracle big/small split per timeslice, no overheads."""

    name = "asymm-oracle"
    overhead_fraction = 0.0

    def __init__(self, lc_cores: int = 16, lc_ways: float = CACHE_ALLOCS[-1]) -> None:
        self.lc_cores = lc_cores
        self.lc_ways = lc_ways

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Exhaustively pick the best big-core count for the batch jobs."""
        n_jobs = len(machine.batch_profiles)
        budget = machine.params.llc_ways - self.lc_ways
        ways = ucp_way_allocation(machine.batch_profiles, budget)

        lc_joint = self._lc_choice(machine, load)
        lc_power = machine.true_lc_power(lc_joint, load, self.lc_cores)
        reserved = lc_power * self.lc_cores + machine.power.llc_power()

        big_joints = [JointConfig(BIG, w) for w in ways]
        small_joints = [JointConfig(SMALL, w) for w in ways]
        bips_big = np.array(
            [machine.true_batch_bips(j, big_joints[j]) for j in range(n_jobs)]
        )
        bips_small = np.array(
            [machine.true_batch_bips(j, small_joints[j]) for j in range(n_jobs)]
        )
        power_big = np.array(
            [machine.true_batch_power(j, BIG) for j in range(n_jobs)]
        )
        power_small = np.array(
            [machine.true_batch_power(j, SMALL) for j in range(n_jobs)]
        )

        # Jobs with the largest log-throughput gain get big cores first.
        # An asymmetric multicore keeps every core active (Fig. 7b);
        # the oracle picks the feasible big-core count with the best
        # geometric-mean throughput and only falls back to core gating
        # when even the all-small design busts the budget.
        gain_order = np.argsort(-np.log(bips_big / bips_small))
        best: Optional[Tuple[float, List[Optional[JointConfig]]]] = None
        residual = machine.power.gated_core_power()
        for n_big in range(n_jobs + 1):
            on_big = set(gain_order[:n_big].tolist())
            is_big = np.array([j in on_big for j in range(n_jobs)])
            power = np.where(is_big, power_big, power_small)
            if power.sum() + reserved > max_power:
                continue
            vals = np.where(is_big, bips_big, bips_small)
            score = float(np.exp(np.mean(np.log(vals))))
            if best is None or score > best[0]:
                configs = [
                    big_joints[j] if is_big[j] else small_joints[j]
                    for j in range(n_jobs)
                ]
                best = (score, configs)
        if best is not None:
            configs = best[1]
        else:
            # Fallback: all-small, gating in descending power until the
            # budget is met (same last resort as core-level gating).
            configs = list(small_joints)
            power = power_small.copy()
            order = np.argsort(-power_small)
            active = set(range(n_jobs))
            def total() -> float:
                running = sum(power_small[j] for j in active)
                return running + (n_jobs - len(active)) * residual + reserved
            for victim in order:
                if total() <= max_power:
                    break
                active.discard(int(victim))
                configs[int(victim)] = None
        return Assignment(
            lc_cores=self.lc_cores,
            lc_config=lc_joint,
            batch_configs=tuple(configs),
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """Oracle carries no state."""

    def _lc_choice(self, machine: Machine, load: float) -> JointConfig:
        """Least-power core type that meets QoS (big wins ties on safety)."""
        qos = machine.lc_service.qos_latency_s
        small = JointConfig(SMALL, self.lc_ways)
        big = JointConfig(BIG, self.lc_ways)
        if machine.true_lc_p99(small, load, self.lc_cores) <= qos:
            return small
        return big


class StaticAsymmetricPolicy:
    """Fixed 50 % big / 50 % small multicore (§VIII-C).

    The LC service owns the big half; batch jobs run on the small half
    and are gated in descending measured power to meet the budget.
    """

    name = "asymm-50-50"
    overhead_fraction = 0.011  # same single profiling sample as gating

    def __init__(self, lc_ways: float = CACHE_ALLOCS[-1]) -> None:
        self.lc_ways = lc_ways

    def decide(self, machine: Machine, load: float, max_power: float) -> Assignment:
        """Batch on small cores; gate by measured power to fit the budget."""
        n_jobs = len(machine.batch_profiles)
        n_big = machine.params.n_cores // 2
        budget = machine.params.llc_ways - self.lc_ways
        ways = ucp_way_allocation(machine.batch_profiles, budget)
        joints = [JointConfig(SMALL, w) for w in ways]

        sample = machine.profile_configs(
            [JointConfig(SMALL, CACHE_ALLOCS[0])], load
        )
        power = sample[1][0]
        lc_joint = JointConfig(BIG, self.lc_ways)
        reserved = (
            machine.true_lc_power(lc_joint, load, n_big) * n_big
            + machine.power.llc_power()
        )
        residual = machine.power.gated_core_power()
        keep = np.ones(n_jobs, dtype=bool)
        order = np.argsort(-power)
        while (
            power[keep].sum() + (~keep).sum() * residual + reserved > max_power
            and keep.any()
        ):
            victim = next((j for j in order if keep[j]), None)
            if victim is None:
                break
            keep[victim] = False
        configs = [joints[j] if keep[j] else None for j in range(n_jobs)]
        return Assignment(
            lc_cores=n_big,
            lc_config=lc_joint,
            batch_configs=tuple(configs),
        )

    def observe(self, measurement: SliceMeasurement) -> None:
        """No cross-quantum state."""

"""Self-contained static HTML dashboard for one run's JSONL log.

``render_dashboard`` turns a parsed telemetry record list (a ``run
--jsonl`` export or a fleet-merged log) into a single HTML file with
inline CSS and inline SVG charts — no scripts, no external assets, so
the file opens identically from a laptop, an artifact store, or an
air-gapped machine, and its bytes are a pure function of the records
(the golden-snapshot test depends on that: no wall clock, no
randomness).

Rendered surfaces: stat tiles (quanta, violations, retries, drops),
the measured-vs-predicted p99 timeline, the power timeline with the
prediction error band, accuracy-drift events, and per-unit decision
throughput.  Worker identities are deliberately absent from merged
logs (they would break byte-identical ``--jobs`` output), so per-worker
health lives in the live ``--watch`` view, not here.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["render_dashboard"]

# Chart geometry (one shared frame so the page reads as a set).
_W, _H = 640.0, 220.0
_ML, _MR, _MT, _MB = 48.0, 12.0, 12.0, 26.0


def _fmt(value: float, digits: int = 2) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    return f"{value:.{digits}f}"


def _esc(text: Any) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _scale(lo: float, hi: float, a: float, b: float):
    span = hi - lo if hi > lo else 1.0

    def to(value: float) -> float:
        return a + (value - lo) / span * (b - a)

    return to


def _axis(y_to, y_lo: float, y_hi: float, x_label: str) -> List[str]:
    parts: List[str] = []
    for i in range(5):
        value = y_lo + (y_hi - y_lo) * i / 4.0
        y = y_to(value)
        cls = "baseline" if i == 0 else "gridline"
        parts.append(
            f'<line class="{cls}" x1="{_ML:.1f}" y1="{y:.1f}" '
            f'x2="{_W - _MR:.1f}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="tick" x="{_ML - 6:.1f}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_fmt(value, 1)}</text>'
        )
    parts.append(
        f'<text class="tick" x="{_W - _MR:.1f}" y="{_H - 6:.1f}" '
        f'text-anchor="end">{_esc(x_label)}</text>'
    )
    return parts


def _polyline(points: Sequence[Tuple[float, float]], css: str,
              label: str) -> str:
    coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
    dots = "".join(
        f'<circle class="hit" cx="{x:.1f}" cy="{y:.1f}" r="7">'
        f"<title>{_esc(title)}</title></circle>"
        for (x, y), title in zip(points, label.split("\x00"))
    ) if "\x00" in label else ""
    return f'<polyline class="{css}" points="{coords}"/>' + dots


def _line_chart(
    title: str,
    unit_label: str,
    series: Sequence[Tuple[str, str, List[Tuple[float, float]]]],
    band: Optional[Tuple[List[Tuple[float, float]],
                         List[Tuple[float, float]]]] = None,
    note: str = "",
) -> str:
    """One single-axis SVG line chart; series = (name, css-class, pts)."""
    populated = [pts for _n, _c, pts in series if pts]
    if not populated:
        return (
            f"<figure><figcaption><strong>{_esc(title)}</strong>"
            "</figcaption><p class=\"empty\">no decision records in this "
            "log</p></figure>"
        )
    xs = [x for pts in populated for x, _y in pts]
    ys = [y for pts in populated for _x, y in pts]
    if band:
        ys += [y for _x, y in band[0]] + [y for _x, y in band[1]]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = 0.0, max(ys) * 1.08 if max(ys) > 0 else 1.0
    x_to = _scale(x_lo, x_hi, _ML, _W - _MR)
    y_to = _scale(y_lo, y_hi, _H - _MB, _MT)
    parts = [
        f'<svg viewBox="0 0 {_W:.0f} {_H:.0f}" role="img" '
        f'aria-label="{_esc(title)}">'
    ]
    parts += _axis(y_to, y_lo, y_hi, "quantum")
    if band:
        upper, lower = band
        ring = " ".join(
            f"{x_to(x):.1f},{y_to(y):.1f}" for x, y in upper
        ) + " " + " ".join(
            f"{x_to(x):.1f},{y_to(y):.1f}" for x, y in reversed(lower)
        )
        parts.append(f'<polygon class="band" points="{ring}"/>')
    for name, css, pts in series:
        if not pts:
            continue
        scaled = [(x_to(x), y_to(y)) for x, y in pts]
        coords = " ".join(f"{x:.1f},{y:.1f}" for x, y in scaled)
        parts.append(f'<polyline class="line {css}" points="{coords}"/>')
        for (sx, sy), (x, y) in zip(scaled, pts):
            parts.append(
                f'<circle class="hit" cx="{sx:.1f}" cy="{sy:.1f}" r="7">'
                f"<title>{_esc(name)} @ quantum {x:g}: "
                f"{_fmt(y)} {_esc(unit_label)}</title></circle>"
            )
    parts.append("</svg>")
    legend = "".join(
        f'<span class="key"><span class="swatch {css}"></span>'
        f"{_esc(name)}</span>"
        for name, css, pts in series if pts
    )
    caption = (
        f"<figcaption><strong>{_esc(title)}</strong> "
        f'<span class="unit">({_esc(unit_label)})</span>'
        f'<span class="legend">{legend}</span></figcaption>'
    )
    note_html = f'<p class="note">{_esc(note)}</p>' if note else ""
    return f"<figure>{caption}{''.join(parts)}{note_html}</figure>"


def _bar_chart(title: str, unit_label: str,
               items: Sequence[Tuple[str, float]]) -> str:
    """Horizontal bars with direct value labels (one per unit)."""
    if not items:
        return ""
    row_h = 26.0
    height = _MT + row_h * len(items) + 8
    top = max(value for _n, value in items) or 1.0
    x_to = _scale(0.0, top * 1.15, 200.0, _W - _MR)
    parts = [
        f'<svg viewBox="0 0 {_W:.0f} {height:.0f}" role="img" '
        f'aria-label="{_esc(title)}">'
    ]
    for i, (name, value) in enumerate(items):
        y = _MT + i * row_h
        parts.append(
            f'<text class="label" x="192" y="{y + 14:.1f}" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect class="bar" x="200" y="{y:.1f}" '
            f'width="{x_to(value) - 200.0:.1f}" height="16" rx="2">'
            f"<title>{_esc(name)}: {value:g} {_esc(unit_label)}</title>"
            "</rect>"
        )
        parts.append(
            f'<text class="value" x="{x_to(value) + 6:.1f}" '
            f'y="{y + 13:.1f}">{value:g}</text>'
        )
    parts.append("</svg>")
    return (
        f"<figure><figcaption><strong>{_esc(title)}</strong> "
        f'<span class="unit">({_esc(unit_label)})</span></figcaption>'
        f"{''.join(parts)}</figure>"
    )


def _tile(label: str, value: Any, status: str = "") -> str:
    cls = f"tile {status}".strip()
    return (
        f'<div class="{cls}"><div class="tile-value">{_esc(value)}</div>'
        f'<div class="tile-label">{_esc(label)}</div></div>'
    )


_CSS = """
:root { color-scheme: light; }
body.viz-root {
  margin: 0; padding: 24px;
  background: #f9f9f7; color: #0b0b0b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface-1: #fcfcfb; --ink-1: #0b0b0b; --ink-2: #52514e;
  --muted: #898781; --gridline: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --critical: #d03b3b; --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body.viz-root {
    background: #0d0d0d; color: #ffffff;
    --surface-1: #1a1a19; --ink-1: #ffffff; --ink-2: #c3c2b7;
    --gridline: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --ring: rgba(255,255,255,0.10);
  }
}
main { max-width: 720px; margin: 0 auto; }
h1 { font-size: 20px; margin: 0 0 4px; }
.subtitle { color: var(--ink-2); font-size: 13px; margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 0 0 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 14px; min-width: 96px;
}
.tile-value { font-size: 24px; }
.tile.alert .tile-value { color: var(--critical); }
.tile-label { color: var(--ink-2); font-size: 12px; }
figure {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 14px; margin: 0 0 20px;
}
figcaption { font-size: 13px; margin-bottom: 8px; }
figcaption .unit, .note { color: var(--ink-2); font-weight: normal; }
.legend { float: right; }
.key { margin-left: 12px; color: var(--ink-2); font-size: 12px; }
.swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 4px;
}
.swatch.s1 { background: var(--series-1); }
.swatch.s2 { background: var(--series-2); }
svg { width: 100%; height: auto; display: block; }
.gridline { stroke: var(--gridline); stroke-width: 1; }
.baseline { stroke: var(--baseline); stroke-width: 1; }
.tick, .label, .value { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
.label, .value { fill: var(--ink-2); }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.line.s1 { stroke: var(--series-1); }
.line.s2 { stroke: var(--series-2); stroke-dasharray: 5 3; }
.band { fill: var(--series-1); opacity: 0.12; stroke: none; }
.bar { fill: var(--series-1); }
.hit { fill: transparent; }
.empty, .note { font-size: 12px; margin: 6px 0 0; }
table { border-collapse: collapse; font-size: 12px; width: 100%; }
th, td { text-align: left; padding: 3px 10px 3px 0;
  border-bottom: 1px solid var(--gridline); }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
"""


def render_dashboard(records: Iterable[Dict],
                     title: str = "repro run dashboard") -> str:
    """One run's JSONL records as a self-contained HTML page.

    Pure function of ``records`` — same log in, same bytes out.
    """
    records = list(records)
    decisions = [r for r in records if r.get("type") == "decision"]
    counters: Dict[str, float] = {}
    for rec in records:
        if rec.get("type") == "counter":
            counters[rec["name"]] = (
                counters.get(rec["name"], 0) + rec["value"]
            )
    drift = [
        r for r in records
        if r.get("type") == "instant" and "drift" in r.get("name", "")
    ]
    units = sorted({
        r["unit"] for r in records if r.get("unit") is not None
    })

    def numeric(value) -> bool:
        return isinstance(value, (int, float)) and value > 0

    measured_p99 = [
        (i, rec["measured_p99_s"][0] * 1e3)
        for i, rec in enumerate(decisions)
        if rec.get("measured_p99_s") and numeric(rec["measured_p99_s"][0])
    ]
    predicted_p99 = [
        (i, rec["predicted_p99_s"][0] * 1e3)
        for i, rec in enumerate(decisions)
        if rec.get("predicted_p99_s") and numeric(rec["predicted_p99_s"][0])
    ]
    measured_power = [
        (i, rec["measured_power_w"])
        for i, rec in enumerate(decisions)
        if numeric(rec.get("measured_power_w"))
    ]
    predicted_power = [
        (i, rec["predicted_power_w"])
        for i, rec in enumerate(decisions)
        if numeric(rec.get("predicted_power_w"))
    ]
    # The prediction error band spans predicted..measured wherever both
    # exist for the same quantum.
    power_by_i = dict(measured_power)
    band_pairs = [
        (i, p, power_by_i[i]) for i, p in predicted_power
        if i in power_by_i
    ]
    band = None
    if band_pairs:
        band = (
            [(i, max(p, m)) for i, p, m in band_pairs],
            [(i, min(p, m)) for i, p, m in band_pairs],
        )

    per_unit_decisions = [
        (unit, float(sum(
            1 for rec in decisions if rec.get("unit") == unit
        )))
        for unit in units
    ]
    per_unit_decisions = [(u, n) for u, n in per_unit_decisions if n > 0]

    qos_violations = int(counters.get("harness.qos_violations", 0))
    power_violations = int(counters.get("harness.power_violations", 0))
    degradations = int(counters.get("controller.degradation.rungs", 0))
    retries = int(counters.get("fleet.retries", 0))
    fallbacks = int(counters.get("fleet.serial_fallbacks", 0))
    dropped = int(counters.get("live.dropped_events", 0))

    tiles = [
        _tile("decision quanta", len(decisions)),
        _tile("QoS violations", qos_violations,
              "alert" if qos_violations else ""),
        _tile("power violations", power_violations,
              "alert" if power_violations else ""),
        _tile("degraded decisions", degradations,
              "alert" if degradations else ""),
        _tile("drift events", len(drift), "alert" if drift else ""),
        _tile("fleet retries", retries, "alert" if retries else ""),
        _tile("serial fallbacks", fallbacks),
        _tile("dropped live events", dropped, "alert" if dropped else ""),
    ]

    p99_chart = _line_chart(
        "Tail latency per quantum", "ms p99",
        [
            ("measured", "s1", [(float(x), y) for x, y in measured_p99]),
            ("predicted", "s2", [(float(x), y) for x, y in predicted_p99]),
        ],
    )
    power_chart = _line_chart(
        "Chip power per quantum", "W",
        [
            ("measured", "s1", [(float(x), y) for x, y in measured_power]),
            ("predicted", "s2",
             [(float(x), y) for x, y in predicted_power]),
        ],
        band=(
            ([(float(x), y) for x, y in band[0]],
             [(float(x), y) for x, y in band[1]]) if band else None
        ),
        note="shaded band spans predicted-to-measured power "
             "(the per-quantum prediction error)",
    )
    unit_chart = _bar_chart(
        "Per-unit decision throughput", "decision quanta",
        per_unit_decisions,
    )

    drift_rows = "".join(
        "<tr><td>{name}</td><td>{detail}</td></tr>".format(
            name=_esc(rec.get("name", "")),
            detail=_esc(", ".join(
                f"{key}={val}"
                for key, val in sorted((rec.get("args") or {}).items())
            ) or "-"),
        )
        for rec in drift
    )
    drift_html = (
        "<figure><figcaption><strong>Accuracy drift events</strong>"
        "</figcaption><table><tr><th>event</th><th>detail</th></tr>"
        f"{drift_rows}</table></figure>"
        if drift else ""
    )
    counter_rows = "".join(
        f"<tr><td>{_esc(name)}</td>"
        f'<td class="num">{counters[name]:g}</td></tr>'
        for name in sorted(counters)
    )
    counters_html = (
        "<figure><figcaption><strong>Run counters</strong></figcaption>"
        "<table><tr><th>counter</th><th>value</th></tr>"
        f"{counter_rows}</table></figure>"
        if counters else ""
    )
    subtitle = (
        f"{len(decisions)} decision quanta · "
        f"{len(units) or 1} unit(s) · {len(records)} telemetry records"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" '
        'content="width=device-width, initial-scale=1"/>\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n"
        '<body class="viz-root">\n<main>\n'
        f"<h1>{_esc(title)}</h1>\n"
        f'<p class="subtitle">{_esc(subtitle)}</p>\n'
        f'<section class="tiles">{"".join(tiles)}</section>\n'
        f"{p99_chart}\n{power_chart}\n{unit_chart}\n"
        f"{drift_html}\n{counters_html}\n"
        "</main>\n</body>\n</html>\n"
    )

"""Per-quantum decision provenance: the *why* behind each decision.

The telemetry layer has always recorded *what* the controller decided
(:class:`~repro.telemetry.metrics.DecisionRecord`, accuracy audits) but
not *why* — which DDS candidates were generated and rejected as
infeasible, why the degradation ladder dropped a rung, what the budget
meter read when it did, whether safe mode or a quarantine pinned the
outcome.  A :class:`ProvenanceRecorder` attached to a
:class:`~repro.telemetry.Telemetry` session captures that causal chain
as one JSON-serialisable record per quantum.

Records are **bounded**: the DDS candidate set is summarised as the
top-K candidates plus aggregate feasibility counts, so a record stays
O(K) even though a full search evaluates ~6450 points.  Records are
**deterministic**: they carry only virtual-time quantities (operation
counts, objective values, meter readings), never wall-clock — which is
what lets ``repro replay`` re-execute a quantum from a crash-safe
snapshot and diff the reproduced record byte-for-byte against the
recorded one (:func:`provenance_key`).

Emission rides the existing JSONL machinery: ``write_jsonl`` appends
``"type": "provenance"`` lines after the decision records, and
``merge_jsonl`` / :class:`~repro.telemetry.live.LiveAggregator` order
them by ``(quantum, unit)`` like decisions.  ``python -m repro explain``
renders a record as a human-readable report (:func:`render_explain`).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ProvenanceRecorder",
    "candidate_provenance",
    "classify_candidates",
    "provenance_key",
    "provenance_records_from_jsonl",
    "render_explain",
]


class ProvenanceRecorder:
    """Bounded per-quantum store of decision-provenance records.

    The harness marks quantum boundaries with :meth:`begin_quantum`;
    the controller emits one record per ``decide()`` call (including
    the degraded early-return paths).  ``max_records`` bounds memory on
    long soaks — drops are counted, never silent, and the
    ``profiler.overhead`` bench case pins the dropped count at zero.
    """

    def __init__(self, top_k: int = 5, max_records: int = 4096) -> None:
        if top_k < 1:
            raise ValueError("top_k must be at least 1")
        if max_records < 1:
            raise ValueError("max_records must be at least 1")
        #: Candidates kept verbatim per record (the rest are counted).
        self.top_k = top_k
        self.max_records = max_records
        #: Records in emission order (quantum order within one run).
        self.records: List[Dict[str, Any]] = []
        #: Records rejected by the ``max_records`` bound.
        self.dropped = 0
        #: Quantum index set by the harness; ``None`` outside a run
        #: (the controller then falls back to its budget's quantum
        #: counter, which survives snapshot/restore).
        self.quantum: Optional[int] = None

    def begin_quantum(self, quantum: int) -> None:
        """Mark the start of harness quantum ``quantum``."""
        self.quantum = int(quantum)

    def record(self, record: Dict[str, Any]) -> bool:
        """Store one provenance record; False when the bound drops it."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return False
        self.records.append(record)
        return True

    def for_quantum(self, quantum: int) -> Optional[Dict[str, Any]]:
        """The record emitted for ``quantum``, or None."""
        for record in self.records:
            if record.get("quantum") == quantum:
                return record
        return None

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0
        self.quantum = None


# ----------------------------------------------------------------------
# Candidate classification
# ----------------------------------------------------------------------

def classify_candidates(
    objective: Any, xs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised feasibility classification of decision vectors.

    Mirrors :meth:`repro.core.objective.SystemObjective.evaluate_batch`'s
    power/way arithmetic (including the 0.5 half-way pairing) over a
    ``(n, n_dims)`` batch, duck-typed on the objective's public arrays
    so the telemetry layer needs no ``repro.core`` import.  Returns
    ``(power_w, total_ways, over_power, over_ways)``.
    """
    xs = np.atleast_2d(np.asarray(xs, dtype=int))
    cols = np.arange(xs.shape[1])[None, :]
    power = np.sum(objective.power[cols, xs], axis=1) + objective.reserved_power
    ways = objective.ways_by_config[xs]
    halves = np.sum(ways == 0.5, axis=1)  # repro: noqa[UNIT301]
    whole = np.sum(np.where(ways == 0.5, 0.0, ways), axis=1)  # repro: noqa[UNIT301]
    total_ways = whole + np.ceil(halves / 2.0) + objective.reserved_ways
    over_power = power > objective.max_power
    over_ways = total_ways > objective.max_ways + 1e-9
    return power, total_ways, over_power, over_ways


def _rejection_reason(over_power: bool, over_ways: bool) -> str:
    reasons = []
    if over_power:
        reasons.append("power_over_cap")
    if over_ways:
        reasons.append("cache_over_ways")
    return "+".join(reasons) if reasons else "feasible"


def candidate_provenance(
    objective: Any,
    explored: Sequence[Tuple[np.ndarray, float]],
    top_k: int,
) -> Dict[str, Any]:
    """Summarise a search's explored set as top-K + aggregate counts.

    ``explored`` is the searcher's ``(decision vector, objective)``
    trace (``record_explored=True``).  Ties in the objective break by
    exploration order (stable sort), so the summary is deterministic.
    """
    if not explored:
        return {
            "top_candidates": [],
            "rejections": {
                "feasible": 0, "power_over_cap": 0, "cache_over_ways": 0,
            },
        }
    xs = np.stack([x for x, _ in explored])
    values = np.array([v for _, v in explored], dtype=float)
    power, ways, over_power, over_ways = classify_candidates(objective, xs)
    feasible = ~(over_power | over_ways)
    order = np.argsort(-values, kind="stable")[:top_k]
    candidates = [
        {
            "x": [int(v) for v in xs[i]],
            "objective": float(values[i]),
            "power_w": float(power[i]),
            "ways": float(ways[i]),
            "feasible": bool(feasible[i]),
            "reason": _rejection_reason(
                bool(over_power[i]), bool(over_ways[i])
            ),
        }
        for i in order
    ]
    return {
        "top_candidates": candidates,
        "rejections": {
            "feasible": int(feasible.sum()),
            "power_over_cap": int(over_power.sum()),
            "cache_over_ways": int(over_ways.sum()),
        },
    }


# ----------------------------------------------------------------------
# Reading records back
# ----------------------------------------------------------------------

def provenance_records_from_jsonl(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """The ``"type": "provenance"`` lines of a parsed JSONL log."""
    return [r for r in records if r.get("type") == "provenance"]


def provenance_key(record: Dict[str, Any]) -> str:
    """Canonical byte representation used for replay byte-diffs.

    Strips the merge-time ``unit`` tag (a fleet artefact, not part of
    the decision) and serialises with sorted keys, so a record written
    by a run and one reproduced by ``repro replay`` compare equal
    exactly when every recorded quantity matches.
    """
    stripped = {k: v for k, v in record.items() if k != "unit"}
    return json.dumps(stripped, sort_keys=True)


# ----------------------------------------------------------------------
# Human-readable "why" report
# ----------------------------------------------------------------------

def _fmt(value: Any, spec: str = ".4g") -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, spec)
    return str(value)


def _budget_lines(budget: Optional[Dict[str, Any]]) -> List[str]:
    if not budget:
        return ["budget: unlimited (no meter readings recorded)"]
    limit = budget.get("limit")
    line = (
        f"budget: limit={_fmt(limit)} "
        f"spent={_fmt(budget.get('spent'))} "
        f"remaining={_fmt(budget.get('remaining'))}"
    )
    lines = [line]
    full = budget.get("full_search_cost")
    reduced = budget.get("reduced_search_cost")
    if full is not None:
        priced = f"ladder pricing: full search costs {_fmt(full)}"
        if reduced is not None:
            priced += f", reduced search costs {_fmt(reduced)}"
        lines.append(priced)
    return lines


def render_explain(record: Dict[str, Any]) -> str:
    """Render one provenance record as a human-readable "why" report."""
    lines: List[str] = []
    quantum = record.get("quantum")
    unit = record.get("unit")
    header = f"decision provenance — quantum {quantum}"
    if unit is not None:
        header += f" (unit {unit})"
    lines.append(header)
    lines.append("=" * len(header))

    mode = record.get("mode", "unknown")
    lines.append(f"mode: {mode}")
    lines.extend(_budget_lines(record.get("budget")))

    recon = record.get("reconstruction")
    if recon:
        for metric in sorted(recon):
            d = recon[metric]
            lines.append(
                f"reconstruction[{metric}]: "
                f"{_fmt(d.get('iterations'))} iteration(s), "
                f"rmse={_fmt(d.get('rmse'))}, "
                f"converged={_fmt(d.get('converged'))}"
            )

    power = record.get("power")
    if power:
        lines.append(
            f"power: cap={_fmt(power.get('max_power_w'))} W, "
            f"target={_fmt(power.get('target_power_w'))} W "
            f"(headroom {_fmt(power.get('headroom_fraction'))}), "
            f"reserved={_fmt(power.get('reserved_power_w'))} W"
        )

    lc = record.get("lc")
    if lc:
        for entry in lc:
            lines.append(
                f"lc[{entry.get('service')}]: load={_fmt(entry.get('load'))} "
                f"rps, cores={_fmt(entry.get('cores'))}, "
                f"config={_fmt(entry.get('config'))}, "
                f"reclaimed={_fmt(entry.get('reclaimed'))}"
            )

    search = record.get("search")
    if search:
        rej = search.get("rejections", {})
        lines.append(
            f"search: {search.get('searcher', '?')}, "
            f"{_fmt(search.get('evaluations'))} evaluation(s) "
            f"(feasible {_fmt(rej.get('feasible'))}, "
            f"power-capped {_fmt(rej.get('power_over_cap'))}, "
            f"cache-capped {_fmt(rej.get('cache_over_ways'))})"
        )
        candidates = search.get("top_candidates") or []
        if candidates:
            lines.append("top candidates:")
            for rank, cand in enumerate(candidates, 1):
                lines.append(
                    f"  #{rank} objective={_fmt(cand.get('objective'))} "
                    f"power={_fmt(cand.get('power_w'))} W "
                    f"ways={_fmt(cand.get('ways'))} "
                    f"{cand.get('reason', '?')}"
                )

    fallback = record.get("power_fallback")
    if fallback:
        lines.append(
            "power fallback: "
            f"{_fmt(fallback.get('cores_disabled'))} core(s) disabled "
            f"to meet the cap"
        )

    rungs = record.get("rungs")
    if rungs:
        lines.append(f"degradation rungs this quantum: {', '.join(rungs)}")

    safety = record.get("safety")
    if safety:
        lines.append(
            f"safety: safe_mode={_fmt(safety.get('safe_mode'))}, "
            f"quarantined_jobs={_fmt(safety.get('quarantined_jobs'))}"
        )

    chosen = record.get("chosen")
    if chosen:
        lines.append(
            f"chosen: objective={_fmt(chosen.get('objective'))}, "
            f"power={_fmt(chosen.get('power_w'))} W, "
            f"ways={_fmt(chosen.get('ways'))}"
        )
    return "\n".join(lines)

"""Deterministic virtual-cost profiler over recorded telemetry spans.

The tracer already times every phase of the decision loop; this module
aggregates those spans into a **call tree** keyed by name path
(``quantum;decide;search;dds.search``) and attributes two kinds of cost
to each node:

* **wall time** — inclusive (span duration) and exclusive (duration
  minus direct children), useful for humans but machine-dependent;
* **operation counters** — the RNG-safe virtual-time quantities the
  spans already carry as args (``evaluations``, ``iterations``), the
  same quantities :class:`~repro.core.deadline.DecisionBudget` meters.

The operation-counter component is a pure function of the recorded
span structure, so a profile of a fleet-merged log is **byte-identical
across runs and ``--jobs`` levels** — that is what CI diffs.  Exports:

* :func:`folded_stacks` — ``flamegraph.pl``-compatible folded lines;
* :func:`chrome_trace_from_profile` — a synthesized Chrome
  ``trace_event`` view of the merged tree (children laid out
  depth-first), loadable in Perfetto;
* :func:`render_profile_table` — the "top N costs" table behind
  ``python -m repro profile``;
* :func:`render_phase_table` — the per-phase attribution
  (``sgd.reconstruct`` / ``dds.search`` / ``mgk.latency`` /
  ``controller.overhead``) that sizes the ROADMAP's "vectorize the
  decision hot path" item.
"""

from __future__ import annotations

import io
from typing import Any, Dict, Iterable, Iterator, List, Tuple

__all__ = [
    "OP_KEYS",
    "ProfileNode",
    "build_profile",
    "chrome_trace_from_profile",
    "folded_stacks",
    "iter_nodes",
    "phase_summary",
    "profile_telemetry",
    "render_phase_table",
    "render_profile_table",
    "write_folded",
    "write_profile_chrome_trace",
]

#: Span args treated as RNG-safe operation counters.  These are the
#: quantities the instrumented phases attach deterministically
#: (``dds.search``/``ga.search`` evaluations, ``sgd.reconstruct`` and
#: ``mgk.latency`` iterations/evaluations) — never wall-derived.
OP_KEYS: Tuple[str, ...] = ("evaluations", "iterations")

#: Spans whose *exclusive* time is controller bookkeeping rather than
#: a metered phase — the ``controller.overhead`` row of the phase
#: table.
_CONTROLLER_SPANS = (
    "decide", "sgd", "lc_scan", "search", "power_fallback", "observe",
)

#: The phase rows the vectorization work is sized against.
_PHASES = ("sgd.reconstruct", "dds.search", "ga.search", "mgk.latency")


class ProfileNode:
    """One call-tree node: a span name at a specific name path."""

    __slots__ = (
        "name", "category", "count", "inclusive_us", "exclusive_us",
        "ops", "children",
    )

    def __init__(self, name: str, category: str = "") -> None:
        self.name = name
        self.category = category
        #: Spans merged into this node.
        self.count = 0
        #: Wall microseconds including children (diagnostic only).
        self.inclusive_us = 0.0
        #: Wall microseconds minus direct children (diagnostic only).
        self.exclusive_us = 0.0
        #: Deterministic operation counters summed from span args.
        self.ops: Dict[str, int] = {}
        self.children: Dict[str, "ProfileNode"] = {}

    def ops_total(self) -> int:
        return sum(self.ops.values())

    def child(self, name: str, category: str = "") -> "ProfileNode":
        node = self.children.get(name)
        if node is None:
            node = ProfileNode(name, category)
            self.children[name] = node
        elif not node.category and category:
            node.category = category
        return node


def build_profile(records: Iterable[Dict[str, Any]]) -> ProfileNode:
    """Aggregate span records into one merged call tree.

    ``records`` is a parsed JSONL log — a single session's or a
    fleet-merged one (``unit``-tagged spans keep per-unit parent links,
    so each unit's tree is rebuilt independently, then merged by name
    path).  Returns a synthetic root whose children are the top-level
    spans.
    """
    by_unit: Dict[Any, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        by_unit.setdefault(rec.get("unit"), []).append(rec)

    root = ProfileNode("", "")
    for unit in sorted(by_unit, key=lambda u: (u is not None, u)):
        spans = by_unit[unit]
        by_id = {span["id"]: span for span in spans}
        child_dur: Dict[int, float] = {}
        for span in spans:
            parent = span.get("parent", -1)
            if parent != -1:
                child_dur[parent] = (
                    child_dur.get(parent, 0.0) + float(span["dur_us"])
                )

        def path_of(span: Dict[str, Any]) -> List[Dict[str, Any]]:
            chain = [span]
            seen = {span["id"]}
            parent = span.get("parent", -1)
            while parent != -1 and parent in by_id and parent not in seen:
                seen.add(parent)
                chain.append(by_id[parent])
                parent = by_id[parent].get("parent", -1)
            chain.reverse()
            return chain

        for span in spans:
            node = root
            for link in path_of(span):
                node = node.child(link["name"], link.get("cat", ""))
            node.count += 1
            dur = float(span["dur_us"])
            node.inclusive_us += dur
            node.exclusive_us += max(
                0.0, dur - child_dur.get(span["id"], 0.0)
            )
            args = span.get("args") or {}
            for key in OP_KEYS:
                value = args.get(key)
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    node.ops[key] = node.ops.get(key, 0) + int(value)
    return root


def profile_telemetry(telemetry: Any) -> ProfileNode:
    """Profile a live :class:`~repro.telemetry.Telemetry` session.

    Round-trips the session through the JSONL exporter so the profile
    of a live run and of its archived log are the same by construction.
    """
    from repro.telemetry.exporters import read_jsonl, write_jsonl

    buffer = io.StringIO()
    write_jsonl(telemetry, buffer)
    buffer.seek(0)
    return build_profile(read_jsonl(buffer))


def iter_nodes(
    root: ProfileNode, prefix: Tuple[str, ...] = ()
) -> Iterator[Tuple[Tuple[str, ...], ProfileNode]]:
    """Depth-first ``(name path, node)`` pairs in sorted-name order."""
    for name in sorted(root.children):
        node = root.children[name]
        path = prefix + (name,)
        yield path, node
        yield from iter_nodes(node, path)


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------

def folded_stacks(root: ProfileNode, weight: str = "exclusive_us") -> str:
    """Folded-stack lines (``a;b;c 123``) for ``flamegraph.pl``.

    ``weight`` selects the per-line integer: ``exclusive_us`` (wall
    self-time, the conventional flame graph), ``ops`` (deterministic
    operation counts), or ``count`` (span counts).  Lines are sorted,
    zero-weight frames dropped.
    """
    if weight not in ("exclusive_us", "ops", "count"):
        raise ValueError(f"unknown folded-stack weight {weight!r}")
    lines: List[str] = []
    for path, node in iter_nodes(root):
        if weight == "exclusive_us":
            value = int(round(node.exclusive_us))
        elif weight == "ops":
            value = node.ops_total()
        else:
            value = node.count
        if value > 0:
            lines.append(";".join(path) + f" {value}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def chrome_trace_from_profile(root: ProfileNode) -> List[Dict[str, Any]]:
    """The merged call tree as Chrome ``trace_event`` complete events.

    A synthesized timeline: children are laid out depth-first from
    their parent's start, each node one ``ph: "X"`` slice of its
    inclusive microseconds — a *merged* view (one slice per name path,
    not per span instance) for eyeballing where aggregate time went.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": "repro profile (merged call tree)"},
    }]

    def emit(node: ProfileNode, ts: float) -> float:
        dur = max(
            node.inclusive_us,
            sum(c.inclusive_us for c in node.children.values()),
        )
        events.append({
            "name": node.name,
            "cat": node.category or "scheduler",
            "ph": "X",
            "ts": round(ts, 3),
            "dur": round(dur, 3),
            "pid": 1,
            "tid": 1,
            "args": {
                "count": node.count,
                **{k: node.ops[k] for k in sorted(node.ops)},
            },
        })
        child_ts = ts
        for name in sorted(node.children):
            child_ts += emit(node.children[name], child_ts)
        return dur

    cursor = 0.0
    for name in sorted(root.children):
        cursor += emit(root.children[name], cursor)
    return events


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------

def _ops_text(ops: Dict[str, int]) -> str:
    if not ops:
        return "-"
    return ",".join(f"{key}={ops[key]}" for key in sorted(ops))


def render_profile_table(
    root: ProfileNode, top: int = 15, ops_only: bool = False
) -> str:
    """The ``repro profile`` "top N costs" table.

    Default mode ranks by exclusive wall time (human diagnostics).
    ``ops_only`` drops every wall-derived column and ranks by
    deterministic operation counts — that table is byte-identical
    across runs and ``--jobs`` levels, and is what the CI diff gates.
    """
    rows = list(iter_nodes(root))
    if ops_only:
        rows.sort(key=lambda item: (-item[1].ops_total(), item[0]))
        lines = [
            "profile: operation counters (deterministic)",
            f"{'path':<52} {'count':>6} {'ops':>10}  breakdown",
        ]
        for path, node in rows[:top]:
            lines.append(
                f"{';'.join(path):<52} {node.count:>6} "
                f"{node.ops_total():>10}  {_ops_text(node.ops)}"
            )
        return "\n".join(lines)
    rows.sort(key=lambda item: (-item[1].exclusive_us, item[0]))
    lines = [
        f"profile: top {min(top, len(rows))} by exclusive wall time",
        f"{'path':<52} {'count':>6} {'incl_ms':>9} {'excl_ms':>9} "
        f"{'ops':>10}",
    ]
    for path, node in rows[:top]:
        lines.append(
            f"{';'.join(path):<52} {node.count:>6} "
            f"{node.inclusive_us / 1e3:>9.2f} "
            f"{node.exclusive_us / 1e3:>9.2f} "
            f"{node.ops_total():>10}"
        )
    return "\n".join(lines)


def phase_summary(root: ProfileNode) -> List[Dict[str, Any]]:
    """Aggregate the tree into the hot-path phase rows.

    ``sgd.reconstruct`` / ``dds.search`` / ``ga.search`` /
    ``mgk.latency`` sum every node of that name wherever it appears;
    ``controller.overhead`` is the *exclusive* time of the controller's
    own spans — the bookkeeping left after the metered phases are
    subtracted out.
    """
    phases: Dict[str, Dict[str, Any]] = {}

    def row(name: str) -> Dict[str, Any]:
        return phases.setdefault(name, {
            "phase": name, "count": 0,
            "inclusive_us": 0.0, "exclusive_us": 0.0, "ops": {},
        })

    for _, node in iter_nodes(root):
        if node.name in _PHASES:
            entry = row(node.name)
        elif node.name in _CONTROLLER_SPANS or node.category == "controller":
            entry = row("controller.overhead")
            entry["count"] += node.count
            entry["inclusive_us"] += node.exclusive_us
            entry["exclusive_us"] += node.exclusive_us
            continue
        else:
            continue
        entry["count"] += node.count
        entry["inclusive_us"] += node.inclusive_us
        entry["exclusive_us"] += node.exclusive_us
        for key, value in node.ops.items():
            entry["ops"][key] = entry["ops"].get(key, 0) + value

    order = list(_PHASES) + ["controller.overhead"]
    return [phases[name] for name in order if name in phases]


def render_phase_table(root: ProfileNode) -> str:
    """The per-phase cost table (docs/observability.md, ROADMAP)."""
    lines = [
        "phase costs",
        f"{'phase':<22} {'count':>6} {'incl_ms':>9} {'excl_ms':>9}  "
        f"operations",
    ]
    for entry in phase_summary(root):
        lines.append(
            f"{entry['phase']:<22} {entry['count']:>6} "
            f"{entry['inclusive_us'] / 1e3:>9.2f} "
            f"{entry['exclusive_us'] / 1e3:>9.2f}  "
            f"{_ops_text(entry['ops'])}"
        )
    return "\n".join(lines)


def write_folded(
    root: ProfileNode, path_or_file, weight: str = "exclusive_us"
) -> int:
    """Write folded stacks to a path or file; returns the line count."""
    text = folded_stacks(root, weight=weight)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w") as handle:
            handle.write(text)
    return 0 if not text else text.count("\n")


def write_profile_chrome_trace(root: ProfileNode, path_or_file) -> int:
    """Write the merged-tree Chrome trace; returns the event count."""
    import json

    events = chrome_trace_from_profile(root)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.telemetry.profiler"},
    }
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file)
    else:
        with open(path_or_file, "w") as handle:
            json.dump(payload, handle)
    return len(events)

"""Live telemetry: streaming events, rolling windows, incremental merge.

Everything in :mod:`repro.telemetry` so far is post-hoc: a run's spans
and metrics become visible only after it finishes and ``merge_jsonl``
stitches the per-unit shards.  This module closes the gap for
long-running fleet studies with three pieces:

* **A bounded, non-blocking event bus.**  Workers push small event
  dicts (quantum outcomes, unit lifecycle, worker health) through a
  bounded queue as they happen.  The one blessed emission call is
  :func:`offer`: it never blocks the decision loop — a full queue
  *drops* the event and counts the drop.  The ``TEL403`` lint rule
  enforces that emission sites go through it.
* **Rolling-window aggregation.**  :class:`LiveAggregator` consumes
  events plus per-unit telemetry records and maintains
  :class:`RollingWindow` percentile sketches over quantum latency, QoS
  violations, power-cap headroom and prediction accuracy, alongside
  per-unit / per-worker health tallies — the state behind
  ``repro fleet --watch`` and ``repro top``.
* **An incremental merge.**  :meth:`LiveAggregator.ingest` folds each
  unit's telemetry records in as the unit completes;
  :meth:`LiveAggregator.merged_records` is byte-identical to the
  post-hoc :func:`repro.telemetry.exporters.merge_jsonl` over the same
  shards (the equivalence tests and the fleet-smoke CI diff hold this).

Events are observability only: dropping every single one changes no
result byte — the determinism contract of docs/scaling.md is untouched.
"""

from __future__ import annotations

import math
import queue as queue_mod
from bisect import insort
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "CallbackSink",
    "LiveAggregator",
    "LiveEmitter",
    "RollingWindow",
    "current_emitter",
    "emit",
    "install_emitter",
    "offer",
    "render_live_status",
]


def offer(sink: Any, event: Any,
          on_drop: Optional[Callable[[Any], None]] = None) -> bool:
    """Bounded, non-blocking enqueue — the blessed live-emission call.

    Returns ``True`` when the event was accepted.  A full queue (or one
    torn down mid-shutdown) *drops* the event, fires ``on_drop``, and
    returns ``False``: live telemetry must never block or kill the
    decision loop, so backpressure costs events, not latency.  The
    ``TEL403`` lint rule requires emission sites to route through here
    instead of calling ``queue.put`` directly.
    """
    try:
        sink.put_nowait(event)
    except queue_mod.Full:
        pass
    except (OSError, ValueError):  # queue closed during shutdown
        pass
    else:
        return True
    if on_drop is not None:
        on_drop(event)
    return False


class CallbackSink:
    """Adapts a plain callable to the queue face :func:`offer` expects.

    The serial (``--jobs 1``) fleet path has no process boundary, so
    events go straight to the aggregator through this shim — same
    emission code path as workers, zero queueing.
    """

    def __init__(self, fn: Callable[[Any], None]) -> None:
        self._fn = fn

    def put_nowait(self, event: Any) -> None:
        self._fn(event)


class LiveEmitter:
    """Per-unit event source wrapping one sink with drop accounting.

    ``emit`` stamps every event with the unit id (and worker name when
    known) and tallies ``emitted`` vs ``dropped`` — the drop counter
    travels home in the ``unit_finished`` event so the aggregator's
    ``dropped_events`` total stays exact even for lossy runs.
    """

    def __init__(self, sink: Any, unit_id: str = "",
                 worker: str = "") -> None:
        self.sink = sink
        self.unit_id = unit_id
        self.worker = worker
        self.emitted = 0
        self.dropped = 0

    def emit(self, kind: str, **payload: Any) -> bool:
        """Offer one event; returns whether it was accepted."""
        event: Dict[str, Any] = dict(payload)
        event["kind"] = kind
        event["unit"] = self.unit_id
        if self.worker:
            event["worker"] = self.worker
        if offer(self.sink, event):
            self.emitted += 1
            return True
        self.dropped += 1
        return False


#: Process-local emitter slot.  Fleet workers install a per-unit
#: emitter around ``unit.run()`` so deeply nested instrumentation (the
#: harness's per-quantum hook) can stream without threading an object
#: through every call signature.  ``None`` (the default, and always
#: the state outside a streaming fleet run) makes :func:`emit` a
#: near-zero-cost no-op.
_EMITTER: Optional[LiveEmitter] = None


def install_emitter(emitter: Optional[LiveEmitter]) -> Optional[LiveEmitter]:
    """Install (or clear, with ``None``) the process-local emitter.

    Returns the previously installed emitter so callers can restore it
    in a ``finally`` — the fleet worker loop scopes an emitter strictly
    to one unit's execution.
    """
    global _EMITTER
    prior = _EMITTER
    # This rebinding IS the per-process hook: the worker loop installs
    # an emitter scoped to one unit and restores the prior value in a
    # finally, so no state leaks between units or back to the parent.
    _EMITTER = emitter  # repro: noqa[FLT502]
    return prior


def current_emitter() -> Optional[LiveEmitter]:
    """The process-local emitter, or ``None`` when not streaming."""
    return _EMITTER


def emit(kind: str, **payload: Any) -> bool:
    """Emit through the installed emitter; no-op without one."""
    emitter = _EMITTER
    if emitter is None:
        return False
    return emitter.emit(kind, **payload)


# ----------------------------------------------------------------------
# Rolling windows
# ----------------------------------------------------------------------

class RollingWindow:
    """Sliding window over the last ``size`` float samples.

    The bounded cousin of :class:`repro.telemetry.metrics.Histogram`:
    same linear-interpolated percentiles, but old samples age out, so
    the summary tracks *recent* behaviour of an arbitrarily long run at
    O(size) memory.  NaN samples are dropped at observation.
    """

    __slots__ = ("name", "samples", "total")

    def __init__(self, name: str, size: int = 256) -> None:
        if size < 1:
            raise ValueError("window size must be >= 1")
        self.name = name
        self.samples: "deque[float]" = deque(maxlen=size)
        #: Lifetime observation count (windowed samples plus aged-out).
        self.total = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isnan(value):
            self.samples.append(value)
            self.total += 1

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def last(self) -> float:
        return self.samples[-1] if self.samples else math.nan

    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def rate(self) -> float:
        """Fraction of in-window samples that are non-zero.

        The windowed event *rate* for 0/1 observations (QoS violated,
        power violated): 0.25 means a quarter of recent quanta fired.
        """
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; NaN when empty."""
        if not self.samples:
            return math.nan
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * q / 100.0
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        """count (lifetime) / windowed mean / last / p50 / p95 / p99."""
        return {
            "count": self.total,
            "window": len(self.samples),
            "mean": self.mean(),
            "last": self.last,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

class LiveAggregator:
    """Incremental merge plus rolling operator-facing state.

    Two input faces:

    * :meth:`ingest_event` — streamed event dicts (quantum outcomes,
      unit lifecycle, retries) feeding the rolling windows and health
      tallies; lossy by design.
    * :meth:`ingest` — a completed unit's full telemetry records,
      folded into the incremental merge; lossless, and the source of
      :meth:`merged_records`, which is byte-identical to running
      :func:`~repro.telemetry.exporters.merge_jsonl` over the same
      ``(unit_id, records)`` shards at end of run.

    :meth:`replay` rebuilds the rolling state from an already-merged
    JSONL log, so ``repro top`` can render a finished (or in-progress,
    re-read) run the same way ``--watch`` renders a live one.
    """

    def __init__(self, window: int = 256) -> None:
        # -- incremental merge state (mirrors merge_jsonl exactly) ----
        self._unit_order: List[str] = []
        self._traces: Dict[str, List[Dict]] = {}
        #: name -> [(unit_id, value), ...] kept sorted by unit id, so
        #: the final sum folds in the same order merge_jsonl's
        #: sorted-unit iteration does (float addition is order-
        #: sensitive; "equivalent" is not enough, identical is).
        self._counter_parts: Dict[str, List[Tuple[str, Any]]] = {}
        self._gauges: List[Tuple[Tuple[Any, ...], int, Dict]] = []
        self._histograms: List[Tuple[Tuple[Any, ...], int, Dict]] = []
        self._decisions: List[Tuple[Tuple[Any, ...], int, Dict]] = []
        self._provenance: List[Tuple[Tuple[Any, ...], int, Dict]] = []
        self._seq = 0
        # -- rolling operator state -----------------------------------
        self.window_size = window
        self.windows: Dict[str, RollingWindow] = {}
        self.counter_totals: Dict[str, float] = {}
        self.units: Dict[str, Dict[str, Any]] = {}
        self.workers: Dict[str, Dict[str, int]] = {}
        self.drift_events: List[Dict] = []
        self.events_seen = 0
        self.dropped_events = 0
        self.quanta = 0
        self.qos_violations = 0
        self.power_violations = 0
        self.retries = 0
        self.serial_fallbacks = 0

    # -- rolling-window face -------------------------------------------

    def window(self, name: str) -> RollingWindow:
        if name not in self.windows:
            self.windows[name] = RollingWindow(name, self.window_size)
        return self.windows[name]

    def record_drop(self, n: int = 1) -> None:
        """Account events dropped outside any emitter (parent side)."""
        self.dropped_events += n

    def ingest_event(self, event: Dict[str, Any]) -> None:
        """Fold one streamed event into the rolling state."""
        self.events_seen += 1
        kind = event.get("kind")
        worker = event.get("worker") or ""
        if worker:
            health = self.workers.setdefault(
                worker, {"events": 0, "retries": 0}
            )
            health["events"] += 1
        unit = event.get("unit") or ""
        if unit:
            status = self.units.setdefault(
                unit, {"state": "running", "events": 0, "worker": worker}
            )
            status["events"] += 1
            if worker:
                status["worker"] = worker
        if kind == "quantum":
            self._ingest_quantum(event)
        elif kind == "drift":
            self.drift_events.append(dict(event))
        elif kind == "unit_started" and unit:
            self.units[unit]["state"] = "running"
        elif kind == "unit_finished" and unit:
            ok = event.get("ok", True)
            self.units[unit]["state"] = "done" if ok else "failed"
            self.dropped_events += int(event.get("dropped", 0) or 0)
        elif kind == "unit_retry":
            self.retries += 1
            if worker:
                self.workers[worker]["retries"] += 1
            if unit:
                self.units[unit]["state"] = "retrying"
        elif kind == "serial_fallback":
            self.serial_fallbacks += 1

    def _ingest_quantum(self, event: Dict[str, Any]) -> None:
        self.quanta += 1
        p99_ms = event.get("lc_p99_ms")
        if p99_ms is not None:
            self.window("quantum.lc_p99_ms").observe(p99_ms)
        power = event.get("power_w")
        budget = event.get("budget_w")
        if power is not None:
            self.window("quantum.power_w").observe(power)
        if power is not None and budget:
            self.window("quantum.headroom_pct").observe(
                (budget - power) / budget * 100.0
            )
        qos_violated = bool(event.get("qos_violated"))
        self.window("quantum.qos_violation").observe(
            1.0 if qos_violated else 0.0
        )
        if qos_violated:
            self.qos_violations += 1
        if event.get("power_violated"):
            self.power_violations += 1
        predicted = event.get("predicted_power_w")
        if predicted and power and predicted > 0 and power > 0:
            self.window("accuracy.power_err_pct").observe(
                abs((predicted - power) / power * 100.0)
            )

    # -- incremental merge face ----------------------------------------

    def ingest(self, unit_id: str, records: Iterable[Dict]) -> None:
        """Fold one completed unit's telemetry records into the merge.

        Mirrors :func:`~repro.telemetry.exporters.merge_jsonl` record
        for record; duplicate unit ids raise, as there.
        """
        if unit_id in self._traces:
            raise ValueError(f"duplicate unit id {unit_id!r} in merge")
        insort(self._unit_order, unit_id)
        traces = self._traces.setdefault(unit_id, [])
        for rec in records:
            kind = rec.get("type")
            if kind in ("span", "instant"):
                traces.append({**rec, "unit": unit_id})
                if kind == "instant" and "drift" in rec.get("name", ""):
                    self.drift_events.append({**rec, "unit": unit_id})
            elif kind == "counter":
                parts = self._counter_parts.setdefault(rec["name"], [])
                insort(parts, (unit_id, self._seq, rec["value"]))
                self._seq += 1
                self.counter_totals[rec["name"]] = (
                    self.counter_totals.get(rec["name"], 0) + rec["value"]
                )
            elif kind == "gauge":
                self._insort(
                    self._gauges, (rec["name"], unit_id),
                    {**rec, "unit": unit_id},
                )
            elif kind == "histogram":
                self._insort(
                    self._histograms, (rec["name"], unit_id),
                    {**rec, "unit": unit_id},
                )
            elif kind == "decision":
                self._insort(
                    self._decisions, (rec["quantum"], unit_id),
                    {**rec, "unit": unit_id},
                )
            elif kind == "provenance":
                self._insort(
                    self._provenance, (rec["quantum"], unit_id),
                    {**rec, "unit": unit_id},
                )

    def _insort(self, target: List[Tuple[Tuple[Any, ...], int, Dict]],
                key: Tuple[Any, ...], rec: Dict) -> None:
        # The monotonically increasing seq breaks ties exactly the way
        # merge_jsonl's stable sort does (equal keys only arise within
        # one unit, whose records arrive in order), and guarantees the
        # dict payload is never compared.  Tuples keep py3.9 happy —
        # bisect.insort grew key= only in 3.10.
        insort(target, (key, self._seq, rec))
        self._seq += 1

    def merged_records(self) -> List[Dict]:
        """The canonical merged log, byte-identical to ``merge_jsonl``.

        Safe to call at any point mid-run; the result covers every unit
        ingested so far.
        """
        merged: List[Dict] = []
        for unit_id in self._unit_order:
            merged.extend(self._traces[unit_id])
        for name in sorted(self._counter_parts):
            value: Any = 0
            for _unit, _seq, part in self._counter_parts[name]:
                value = value + part
            merged.append({"type": "counter", "name": name, "value": value})
        merged.extend(rec for _key, _seq, rec in self._gauges)
        merged.extend(rec for _key, _seq, rec in self._histograms)
        merged.extend(rec for _key, _seq, rec in self._decisions)
        merged.extend(rec for _key, _seq, rec in self._provenance)
        return merged

    # -- replay (post-hoc logs) ----------------------------------------

    def replay(self, records: Iterable[Dict]) -> "LiveAggregator":
        """Rebuild rolling state from a merged JSONL log; returns self.

        ``repro top`` uses this to render a log file with the same
        status view ``--watch`` renders live.  Counter names carrying
        fleet/harness totals map onto the matching live tallies.
        """
        totals = {
            "harness.qos_violations": 0,
            "harness.power_violations": 0,
            "fleet.retries": 0,
            "fleet.serial_fallbacks": 0,
            "live.dropped_events": 0,
        }
        for rec in records:
            kind = rec.get("type")
            unit = rec.get("unit") or ""
            if unit and unit not in self.units:
                self.units[unit] = {
                    "state": "done", "events": 0, "worker": "",
                }
            if kind == "counter":
                name = rec["name"]
                self.counter_totals[name] = (
                    self.counter_totals.get(name, 0) + rec["value"]
                )
                if name in totals:
                    totals[name] += rec["value"]
            elif kind == "decision":
                self.quanta += 1
                measured_p99 = rec.get("measured_p99_s") or []
                if measured_p99 and measured_p99[0] is not None:
                    self.window("quantum.lc_p99_ms").observe(
                        measured_p99[0] * 1e3
                    )
                power = rec.get("measured_power_w")
                if power is not None:
                    self.window("quantum.power_w").observe(power)
                predicted = rec.get("predicted_power_w")
                if predicted and power and predicted > 0 and power > 0:
                    self.window("accuracy.power_err_pct").observe(
                        abs((predicted - power) / power * 100.0)
                    )
            elif kind == "instant" and "drift" in rec.get("name", ""):
                self.drift_events.append(dict(rec))
        self.qos_violations += int(totals["harness.qos_violations"])
        self.power_violations += int(totals["harness.power_violations"])
        self.retries += int(totals["fleet.retries"])
        self.serial_fallbacks += int(totals["fleet.serial_fallbacks"])
        self.dropped_events += int(totals["live.dropped_events"])
        return self

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of the rolling state (JSON-serialisable)."""
        return {
            "quanta": self.quanta,
            "qos_violations": self.qos_violations,
            "power_violations": self.power_violations,
            "retries": self.retries,
            "serial_fallbacks": self.serial_fallbacks,
            "events_seen": self.events_seen,
            "dropped_events": self.dropped_events,
            "drift_events": len(self.drift_events),
            "units": {
                unit_id: dict(status)
                for unit_id, status in sorted(self.units.items())
            },
            "workers": {
                name: dict(health)
                for name, health in sorted(self.workers.items())
            },
            "counters": dict(sorted(self.counter_totals.items())),
            "windows": {
                name: self.windows[name].summary()
                for name in sorted(self.windows)
            },
        }


def render_live_status(aggregator: LiveAggregator) -> str:
    """Curses-free terminal status view of one aggregator's state.

    Deterministic in the aggregator's state (no wall clock), so the
    same events always render the same screen — testable, and safe to
    write to stderr mid-run without perturbing stdout determinism.
    """
    snap = aggregator.snapshot()
    states = [status["state"] for status in snap["units"].values()]
    done = sum(1 for s in states if s == "done")
    running = sum(1 for s in states if s in ("running", "retrying"))
    failed = sum(1 for s in states if s == "failed")
    lines = ["live fleet status", "=" * 17]
    unit_line = (
        f"units: {done} done / {running} running / {len(states)} seen"
    )
    if failed:
        unit_line += f" / {failed} FAILED"
    lines.append(unit_line)
    lines.append(
        f"quanta: {snap['quanta']}   "
        f"qos violations: {snap['qos_violations']}   "
        f"power violations: {snap['power_violations']}"
    )
    lines.append(
        f"retries: {snap['retries']}   "
        f"serial fallbacks: {snap['serial_fallbacks']}   "
        f"dropped events: {snap['dropped_events']}"
    )
    if snap["drift_events"]:
        lines.append(f"drift events: {snap['drift_events']}")
    rungs = {
        name[len("controller.degradation."):]: value
        for name, value in snap["counters"].items()
        if name.startswith("controller.degradation.") and value
        and name != "controller.degradation.rungs"
    }
    if rungs:
        total = snap["counters"].get("controller.degradation.rungs", 0)
        detail = ", ".join(
            f"{rung}: {value}" for rung, value in sorted(rungs.items())
        )
        lines.append(f"deadline degradations: {total} ({detail})")
    if snap["windows"]:
        lines.append("")
        lines.append(
            f"rolling window (last {aggregator.window_size}):"
            f"{'':<9} last    mean     p95"
        )
        for name, s in snap["windows"].items():
            lines.append(
                f"  {name:<30} {s['last']:>7.2f} {s['mean']:>7.2f} "
                f"{s['p95']:>7.2f}"
            )
    if snap["units"]:
        lines.append("")
        lines.append("per unit:")
        for unit_id, status in snap["units"].items():
            worker = status["worker"] or "-"
            lines.append(
                f"  [{status['state']:<8}] {unit_id:<28} "
                f"{status['events']:>4} event(s)  {worker}"
            )
    if snap["workers"]:
        lines.append("")
        lines.append("per worker:")
        for name, health in snap["workers"].items():
            lines.append(
                f"  {name:<12} {health['events']:>5} event(s)  "
                f"{health['retries']} retry(ies)"
            )
    return "\n".join(lines)

"""Lightweight span/event tracer for the scheduler stack.

Every phase of the Fig. 3 decision loop — profiling, SGD
reconstruction, the LC configuration scan, the DDS search,
reconfiguration, slice execution — is wrapped in a :class:`Span` via
``tracer.span("sgd")``.  Spans nest (a thread-local-style stack tracks
depth and parents), time with the monotonic clock
(:func:`time.perf_counter_ns`), and can carry arbitrary key/value
arguments set at entry or exit.

When tracing is off the module-level :data:`NULL_TRACER` is used: its
``span``/``instant`` calls return a shared singleton whose
``__enter__``/``__exit__`` do nothing, so instrumented code pays a
single attribute lookup and no allocation — near-zero cost on hot
paths (the acceptance bar: scheduler microbenchmarks regress < 5 %
with telemetry disabled).

Exporters (see :mod:`repro.telemetry.exporters`) turn the recorded
spans into JSONL event logs or Chrome ``trace_event`` JSON loadable in
``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed, possibly nested, named interval."""

    name: str
    category: str = ""
    #: Start time, ns since the owning tracer's epoch.
    start_ns: int = 0
    #: Duration in ns (0 until the span closes).
    duration_ns: int = 0
    #: Nesting depth at entry (0 = top level).
    depth: int = 0
    #: Open-order id, assigned by the tracer.
    id: int = 0
    #: Id of the enclosing span (-1 = top level).
    parent: int = -1
    #: Free-form attributes (small, JSON-serialisable values).
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration in seconds."""
        return self.duration_ns / 1e9

    @property
    def start_s(self) -> float:
        """Span start in seconds since the tracer epoch."""
        return self.start_ns / 1e9

    @property
    def end_ns(self) -> int:
        """Span end, ns since the tracer epoch."""
        return self.start_ns + self.duration_ns

    def set(self, **args: Any) -> "Span":
        """Attach attributes (usable mid-span, e.g. iteration counts)."""
        self.args.update(args)
        return self


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker event (e.g. ``reconfigure`` or churn)."""

    name: str
    timestamp_ns: int
    category: str = ""
    args: Dict[str, Any] = field(default_factory=dict)


class _ActiveSpan:
    """Context manager binding one open :class:`Span` to its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def set(self, **args: Any) -> "_ActiveSpan":
        self.span.set(**args)
        return self

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._close(self.span)


class _NullSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    #: Mirrors :class:`Span` so timing consumers need no branches.
    duration_s = 0.0
    duration_ns = 0
    start_ns = 0
    depth = 0
    args: Dict[str, Any] = {}

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracer stand-in that records nothing and allocates nothing."""

    __slots__ = ()

    enabled = False
    spans: List[Span] = []
    instants: List[Instant] = []

    def span(self, name: str, category: str = "", **args: Any) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        return None

    def durations_s(self, name: str) -> List[float]:
        return []

    def clear(self) -> None:
        return None


#: The process-wide disabled tracer; instrumented code defaults to it.
NULL_TRACER = NullTracer()


class Tracer:
    """Records nested spans against one monotonic-clock epoch."""

    def __init__(self) -> None:
        self.enabled = True
        self.epoch_ns = time.perf_counter_ns()
        #: Closed spans in completion order.
        self.spans: List[Span] = []
        #: Zero-duration marker events in emission order.
        self.instants: List[Instant] = []
        self._stack: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------

    def span(self, name: str, category: str = "", **args: Any) -> _ActiveSpan:
        """Open a nested span; use as ``with tracer.span("sgd") as sp:``."""
        span = Span(
            name=name,
            category=category,
            start_ns=time.perf_counter_ns() - self.epoch_ns,
            depth=len(self._stack),
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else -1,
            args=dict(args) if args else {},
        )
        self._next_id += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _close(self, span: Span) -> None:
        span.duration_ns = (
            time.perf_counter_ns() - self.epoch_ns - span.start_ns
        )
        # Pop the stack down to (and including) this span; tolerate
        # out-of-order exits from exception unwinding.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)

    def instant(self, name: str, category: str = "", **args: Any) -> None:
        """Emit a zero-duration marker event."""
        self.instants.append(
            Instant(
                name=name,
                timestamp_ns=time.perf_counter_ns() - self.epoch_ns,
                category=category,
                args=dict(args) if args else {},
            )
        )

    # ------------------------------------------------------------------

    def durations_s(self, name: str) -> List[float]:
        """All closed durations (seconds) of spans named ``name``."""
        return [s.duration_s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> Iterator[Span]:
        """Closed spans strictly inside ``span`` (time containment)."""
        for other in self.spans:
            if other is span:
                continue
            if (
                other.start_ns >= span.start_ns
                and other.end_ns <= span.end_ns
                and other.depth > span.depth
            ):
                yield other

    def clear(self) -> None:
        """Drop all recorded spans/instants and reset the epoch."""
        self.spans.clear()
        self.instants.clear()
        self._stack.clear()
        self._next_id = 0
        self.epoch_ns = time.perf_counter_ns()


def tracer_of(telemetry: Optional[object]) -> "Tracer | NullTracer":
    """The tracer carried by a telemetry session, or the null tracer.

    Accepts ``None``, a :class:`Tracer`, or anything with a ``tracer``
    attribute (a :class:`repro.telemetry.Telemetry` session), so
    instrumented constructors can take one loosely-typed argument.
    """
    if telemetry is None:
        return NULL_TRACER
    if isinstance(telemetry, (Tracer, NullTracer)):
        return telemetry
    inner = getattr(telemetry, "tracer", None)
    if isinstance(inner, (Tracer, NullTracer)):
        return inner
    return NULL_TRACER

"""Metrics registry: counters, gauges, histograms, decision records.

The registry is the numeric half of the telemetry subsystem (the
tracer is the temporal half).  It holds:

* **counters** — monotonically increasing event tallies (QoS
  violations, core reclamations, emergency core-offs from the §VI-B
  power fallback, reconfigurations, job churn);
* **gauges** — last-written values (current load, power budget);
* **histograms** — streaming samples summarised at p50/p95/p99
  (per-phase latencies, prediction errors);
* **decision records** — one per quantum, pairing the controller's
  *predicted* BIPS/p99/power against the machine's *measured* values,
  so the online reconstruction error (the Fig. 5 quantity) is tracked
  continuously during any run rather than only in the offline
  accuracy experiment.

Prediction errors are signed percentages ``(predicted - measured) /
measured * 100`` — positive means the reconstruction over-estimated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple


def signed_error_percent(predicted: float, measured: float) -> float:
    """Signed relative error in percent; NaN when not comparable."""
    if measured <= 0 or predicted <= 0:
        return math.nan
    return (predicted - measured) / measured * 100.0


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only count up")
        self.value += n


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming samples with percentile summaries.

    Stores every sample (runs are tens to hundreds of quanta, so
    exactness is affordable); NaN samples are dropped at observation.
    """

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isnan(value):
            self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; NaN when empty."""
        if not self.samples:
            return math.nan
        data = sorted(self.samples)
        if len(data) == 1:
            return data[0]
        pos = (len(data) - 1) * q / 100.0
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(data) - 1)
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac

    def summary(self) -> Dict[str, float]:
        """count/mean/min/max plus the p50/p95/p99 trio."""
        if not self.samples:
            return {
                "count": 0, "mean": math.nan, "min": math.nan,
                "max": math.nan, "p50": math.nan, "p95": math.nan,
                "p99": math.nan,
            }
        return {
            "count": len(self.samples),
            "mean": sum(self.samples) / len(self.samples),
            "min": min(self.samples),
            "max": max(self.samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


@dataclass(frozen=True)
class DecisionRecord:
    """Predicted vs measured outcomes of one decision quantum.

    Per-batch-job arrays are aligned with the machine's batch slots;
    gated or unpredicted entries are NaN.  Latency/power fields are
    NaN when the controller had no prediction (e.g. the cold-start
    conservative configuration).
    """

    quantum: int
    #: Predicted / measured per-batch-job BIPS (time-share applied).
    predicted_bips: Tuple[float, ...]
    measured_bips: Tuple[float, ...]
    #: Predicted / measured p99 per hosted LC service, primary first.
    predicted_p99_s: Tuple[float, ...]
    measured_p99_s: Tuple[float, ...]
    #: Predicted / measured total chip power.
    predicted_power_w: float
    measured_power_w: float

    def bips_errors_percent(self) -> List[float]:
        """Signed per-job throughput prediction errors (NaNs dropped)."""
        errors = [
            signed_error_percent(p, m)
            for p, m in zip(self.predicted_bips, self.measured_bips)
        ]
        return [e for e in errors if not math.isnan(e)]

    def p99_errors_percent(self) -> List[float]:
        """Signed per-service tail-latency prediction errors."""
        errors = [
            signed_error_percent(p, m)
            for p, m in zip(self.predicted_p99_s, self.measured_p99_s)
        ]
        return [e for e in errors if not math.isnan(e)]

    def power_error_percent(self) -> float:
        """Signed total-power prediction error (NaN if unavailable)."""
        return signed_error_percent(
            self.predicted_power_w, self.measured_power_w
        )


class MetricsRegistry:
    """Named counters/gauges/histograms plus the decision-record log."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.decisions: List[DecisionRecord] = []

    # -- get-or-create accessors ---------------------------------------

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        return self.histograms[name]

    # -- decision accounting -------------------------------------------

    def record_decision(self, record: DecisionRecord) -> None:
        """Log one quantum's record and fold it into error histograms.

        Error histograms hold |signed error| so p50/p95/p99 read as
        "the error magnitude x % of predictions stay under"; the
        signed values remain available per record.
        """
        self.decisions.append(record)
        for err in record.bips_errors_percent():
            self.histogram("prediction_error.bips_pct").observe(abs(err))
            self.histogram("prediction_error.bips_signed_pct").observe(err)
        for err in record.p99_errors_percent():
            self.histogram("prediction_error.p99_pct").observe(abs(err))
            self.histogram("prediction_error.p99_signed_pct").observe(err)
        power_err = record.power_error_percent()
        if not math.isnan(power_err):
            self.histogram("prediction_error.power_pct").observe(
                abs(power_err)
            )
            self.histogram("prediction_error.power_signed_pct").observe(
                power_err
            )

    # -- export helpers ------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        """Plain-data snapshot (JSON-serialisable)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self.histograms.items())
            },
            "n_decisions": len(self.decisions),
        }


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """A registry that records nothing, at near-zero per-call cost.

    ``Telemetry(enabled=False)`` installs this so instrumented code can
    call ``counter(...)``/``gauge(...)``/``histogram(...)`` freely on
    the per-quantum hot loop: every accessor returns a shared no-op
    instrument without touching a dict, and decision records are
    dropped.  The ``telemetry.overhead_disabled`` benchmark in
    ``repro.bench`` is the regression guard for this path.
    """

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("disabled")
        self._null_gauge = _NullGauge("disabled")
        self._null_histogram = _NullHistogram("disabled")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram

    def record_decision(self, record: DecisionRecord) -> None:
        pass

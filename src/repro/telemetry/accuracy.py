"""Online prediction-accuracy auditing (the Fig. 4 quantity, live).

CuttleSys schedules on *reconstructed* performance/power/latency
matrices, so the quality of every decision is bounded by the quality of
the reconstruction (paper §V, Fig. 4: ~5-12 % error).  Because this
reproduction's simulator is analytical, the ground truth of every job
on all 108 joint configurations is computable at any instant — which
makes continuous auditing cheap:

* each quantum the :class:`AccuracyAuditor` scores the controller's
  :class:`~repro.core.controller.ReconstructionSnapshot` against the
  machine's oracle tables (``Machine.oracle_batch_tables`` /
  ``Machine.oracle_lc_latency_row``), folding per-app error medians
  into ``accuracy.*`` histograms of the session's
  :class:`~repro.telemetry.metrics.MetricsRegistry`;
* a fast-vs-slow EWMA :class:`DriftTracker` per metric flags when the
  reconstruction *degrades* — after job churn, injected faults, or
  phase jumps — rather than only reporting a run-level average;
* every QoS violation is *attributed*: the controller predicted the
  violating configuration safe (**misprediction**), a QoS-meeting
  configuration existed but was not chosen (**search_failure**), or no
  configuration at the allocated cores could have met QoS
  (**infeasible**).

Everything flows through the existing registry, so the JSONL/CSV/trace
exporters and ``python -m repro telemetry-report`` pick the audit up
for free; ``python -m repro audit`` renders the focused report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.logs import get_logger

log = get_logger("telemetry.accuracy")

#: Metric keys the auditor tracks (histogram / drift-tracker names).
AUDIT_METRICS: Tuple[str, ...] = ("bips", "power", "lc_p99")

#: QoS-violation attribution kinds (counter suffixes).
#: ``deadline_degraded`` marks violations in quanta where the decision
#: budget forced the controller down its degradation ladder
#: (repro.core.deadline): the served assignment came from a cheaper
#: search rung, so the violation is priced to the deadline, not to the
#: reconstruction or the full search.
QOS_ATTRIBUTION_KINDS: Tuple[str, ...] = (
    "misprediction", "search_failure", "infeasible", "deadline_degraded",
)


@dataclass(frozen=True)
class AuditConfig:
    """Knobs of the accuracy auditor."""

    #: EWMA smoothing of the fast (reactive) error tracker.
    ewma_alpha: float = 0.4
    #: The slow (reference) tracker's smoothing, as a fraction of
    #: ``ewma_alpha`` — it remembers the pre-drift error level.
    ewma_slow_ratio: float = 0.25
    #: Drift flags when fast > ``drift_factor`` * max(slow, floor).
    drift_factor: float = 2.5
    #: Error floor (percent) below which drift is never flagged: a jump
    #: from 0.5 % to 2 % error is noise, not degradation.
    drift_floor_pct: float = 5.0
    #: Quanta before the trackers are trusted (cold-start errors are
    #: legitimately high while the matrices fill in).
    drift_warmup: int = 3
    #: Latency errors are scored only where the true p99 is at most
    #: this multiple of QoS: far into saturation the queueing model
    #: explodes and relative error stops measuring decision quality
    #: (same regime guard as experiments/fig5_accuracy.py).
    qos_relevance_factor: float = 3.0
    #: Also maintain one histogram per batch application
    #: (``accuracy.app.<name>.<metric>_err_pct``).
    per_app_histograms: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0 < self.ewma_slow_ratio <= 1:
            raise ValueError("ewma_slow_ratio must be in (0, 1]")
        if self.drift_factor <= 1:
            raise ValueError("drift_factor must exceed 1")
        if self.drift_floor_pct < 0:
            raise ValueError("drift_floor_pct must be non-negative")
        if self.drift_warmup < 1:
            raise ValueError("drift_warmup must be at least 1")
        if self.qos_relevance_factor < 1:
            raise ValueError("qos_relevance_factor must be at least 1")


class DriftTracker:
    """Fast-vs-slow EWMA degradation detector over an error series.

    The fast tracker follows the current error level; the slow tracker
    remembers where it used to be.  Degradation — the fast level
    pulling a ``factor`` above the slow one (with a floor so tiny
    absolute errors never flag) — is exactly the churn/fault signature
    the auditor wants: a *rise* relative to the run's own baseline, not
    an absolute threshold that would need per-mix tuning.
    """

    __slots__ = ("alpha", "slow_ratio", "factor", "floor", "warmup",
                 "fast", "slow", "samples")

    def __init__(
        self,
        alpha: float = 0.4,
        slow_ratio: float = 0.25,
        factor: float = 2.5,
        floor: float = 5.0,
        warmup: int = 3,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if factor <= 1:
            raise ValueError("factor must exceed 1")
        self.alpha = alpha
        self.slow_ratio = slow_ratio
        self.factor = factor
        self.floor = floor
        self.warmup = warmup
        self.fast = math.nan
        self.slow = math.nan
        self.samples = 0

    def update(self, value: float) -> bool:
        """Fold one sample in; True when the series is drifting."""
        value = float(value)
        if math.isnan(value):
            return False
        self.samples += 1
        if self.samples == 1:
            self.fast = value
            self.slow = value
        else:
            self.fast += self.alpha * (value - self.fast)
            self.slow += self.alpha * self.slow_ratio * (value - self.slow)
        if self.samples <= self.warmup:
            return False
        return self.fast > self.factor * max(self.slow, self.floor)


@dataclass(frozen=True)
class DriftEvent:
    """One rising-edge drift flag."""

    quantum: int
    metric: str
    fast_pct: float
    slow_pct: float


class AccuracyAuditor:
    """Scores each decision's reconstruction against the oracle.

    Construction registers the auditor on the telemetry session
    (``telemetry.auditor``); the experiment harness picks it up from
    there and calls :meth:`audit_decision` right after the policy
    decides (before the slice runs — batch phases advance in
    ``run_slice``, so the oracle must be snapshotted at decision time)
    and :meth:`audit_measurement` once the slice's measurements are in.

    Policies without a controller/reconstruction (the baselines, safe
    mode, cold start) are counted as unaudited quanta and skipped.
    """

    def __init__(self, telemetry, config: Optional[AuditConfig] = None) -> None:
        self.telemetry = telemetry
        self.config = config if config is not None else AuditConfig()
        self._trackers: Dict[str, DriftTracker] = {
            metric: DriftTracker(
                alpha=self.config.ewma_alpha,
                slow_ratio=self.config.ewma_slow_ratio,
                factor=self.config.drift_factor,
                floor=self.config.drift_floor_pct,
                warmup=self.config.drift_warmup,
            )
            for metric in AUDIT_METRICS
        }
        self._drifting: Dict[str, bool] = {m: False for m in AUDIT_METRICS}
        #: Rising-edge drift flags, in quantum order.
        self.drift_events: List[DriftEvent] = []
        telemetry.auditor = self

    # -- decision-side audit -------------------------------------------

    def audit_decision(
        self, policy, machine, quantum: int
    ) -> Optional[Dict[str, float]]:
        """Score the reconstruction behind this quantum's decision.

        Returns the per-metric median |error| %, or None when the
        policy exposes no reconstruction (baselines, safe mode).
        """
        metrics = self.telemetry.metrics
        controller = getattr(policy, "controller", None)
        snapshot = getattr(controller, "last_reconstruction", None)
        if snapshot is None:
            metrics.counter("accuracy.unaudited_quanta").inc()
            return None
        truth_bips, truth_power = machine.oracle_batch_tables()
        names = [profile.name for profile in machine.batch_profiles]
        medians = {
            "bips": self._audit_batch(
                "bips", snapshot.batch_bips, truth_bips, names
            ),
            "power": self._audit_batch(
                "power", snapshot.batch_power, truth_power, names
            ),
            "lc_p99": self._audit_latency(snapshot, machine),
        }
        for metric, median in medians.items():
            self._update_drift(metric, median, quantum)
        metrics.counter("accuracy.audited_quanta").inc()
        return medians

    def _audit_batch(
        self,
        metric: str,
        predicted: np.ndarray,
        truth: np.ndarray,
        names: Sequence[str],
    ) -> float:
        """Fold one batch matrix's errors in; returns the quantum median.

        Per app, the error is summarised as the median |signed error| %
        over all 108 joint configurations — the Fig. 4 quantity — so a
        few saturated configurations cannot dominate the histogram.
        """
        metrics = self.telemetry.metrics
        per_app: List[float] = []
        for j, name in enumerate(names):
            pred_row = predicted[j]
            truth_row = truth[j]
            ok = (
                np.isfinite(pred_row) & np.isfinite(truth_row)
                & (truth_row > 0) & (pred_row > 0)
            )
            if not ok.any():
                continue
            errors = (pred_row[ok] - truth_row[ok]) / truth_row[ok] * 100.0
            med_abs = float(np.median(np.abs(errors)))
            med_signed = float(np.median(errors))
            per_app.append(med_abs)
            metrics.histogram(f"accuracy.{metric}_err_pct").observe(med_abs)
            metrics.histogram(
                f"accuracy.{metric}_signed_err_pct"
            ).observe(med_signed)
            if self.config.per_app_histograms:
                metrics.histogram(
                    f"accuracy.app.{name}.{metric}_err_pct"
                ).observe(med_abs)
        if not per_app:
            return math.nan
        return float(np.median(per_app))

    def _audit_latency(self, snapshot, machine) -> float:
        """Score the reconstructed LC latency rows against the oracle.

        Errors are restricted to configurations whose *true* p99 stays
        within ``qos_relevance_factor`` x QoS: scoring against the
        regime the prediction was made for (the snapshot's load bucket
        and core count) isolates reconstruction error from the
        one-quantum load-forecast lag the harness models.
        """
        metrics = self.telemetry.metrics
        per_service: List[float] = []
        for lc in snapshot.lc:
            if lc.latency_row is None or lc.cores <= 0:
                continue
            service = machine.lc_services[lc.service_idx]
            truth = machine.oracle_lc_latency_row(
                lc.bucket, lc.cores, lc.service_idx
            )
            ceiling = service.qos_latency_s * self.config.qos_relevance_factor
            pred = np.asarray(lc.latency_row, dtype=float)
            ok = (
                np.isfinite(truth) & np.isfinite(pred)
                & (truth > 0) & (pred > 0) & (truth <= ceiling)
            )
            if not ok.any():
                continue
            errors = (pred[ok] - truth[ok]) / truth[ok] * 100.0
            med_abs = float(np.median(np.abs(errors)))
            per_service.append(med_abs)
            metrics.histogram("accuracy.lc_p99_err_pct").observe(med_abs)
            metrics.histogram("accuracy.lc_p99_signed_err_pct").observe(
                float(np.median(errors))
            )
        if not per_service:
            return math.nan
        return float(np.median(per_service))

    def _update_drift(self, metric: str, value: float, quantum: int) -> None:
        if math.isnan(value):
            return
        tracker = self._trackers[metric]
        drifting = tracker.update(value)
        metrics = self.telemetry.metrics
        metrics.gauge(f"accuracy.drift.{metric}_fast_pct").set(tracker.fast)
        if drifting and not self._drifting[metric]:
            metrics.counter("accuracy.drift.flags").inc()
            self.telemetry.instant(
                "accuracy_drift", category="accuracy", metric=metric,
                quantum=quantum,
                fast_pct=round(tracker.fast, 2),
                slow_pct=round(tracker.slow, 2),
            )
            self.drift_events.append(DriftEvent(
                quantum=quantum, metric=metric,
                fast_pct=tracker.fast, slow_pct=tracker.slow,
            ))
            log.warning(
                "quantum %d: %s reconstruction error drifting "
                "(EWMA %.1f %% vs baseline %.1f %%)",
                quantum, metric, tracker.fast, tracker.slow,
            )
        self._drifting[metric] = drifting

    @property
    def drifting_metrics(self) -> Tuple[str, ...]:
        """Metrics currently flagged as drifting."""
        return tuple(m for m in AUDIT_METRICS if self._drifting[m])

    # -- measurement-side audit ----------------------------------------

    def audit_measurement(
        self,
        machine,
        measurement,
        quantum: int,
        qos_s: float,
        qos_extra_s: Sequence[float] = (),
        policy=None,
    ) -> None:
        """Attribute this slice's QoS violations (if any).

        The oracle row at the *measured* load and the allocated core
        count decides feasibility: tail latency is analytic in (config,
        load, cores), so it needs no decision-time snapshot.
        """
        assignment = measurement.assignment
        prediction = (
            getattr(policy, "last_prediction", None)
            if policy is not None else None
        )
        deadline_degraded = bool(
            getattr(
                getattr(policy, "controller", None),
                "deadline_degraded_quantum",
                False,
            )
        )
        blocks = [(
            0, float(measurement.lc_p99), qos_s,
            assignment.lc_cores, float(measurement.lc_load),
        )]
        for k, alloc in enumerate(assignment.extra_lc):
            qos = qos_extra_s[k] if k < len(qos_extra_s) else math.inf
            p99 = (
                float(measurement.extra_lc_p99[k])
                if k < len(measurement.extra_lc_p99) else 0.0
            )
            lc_load = (
                float(measurement.extra_lc_loads[k])
                if k < len(measurement.extra_lc_loads) else 0.0
            )
            blocks.append((k + 1, p99, qos, alloc.cores, lc_load))
        metrics = self.telemetry.metrics
        for position, (service_idx, p99, qos, cores, lc_load) in enumerate(
            blocks
        ):
            if cores <= 0 or not math.isfinite(p99) or p99 <= qos:
                continue
            truth = machine.oracle_lc_latency_row(lc_load, cores, service_idx)
            finite = truth[np.isfinite(truth)]
            if finite.size and float(finite.min()) > qos:
                kind = "infeasible"
            elif deadline_degraded:
                # The budget ladder served a cheaper rung this quantum;
                # a feasible configuration existed but the full search
                # never ran, so neither misprediction nor search
                # failure describes the miss.
                kind = "deadline_degraded"
            else:
                predicted = (
                    float(prediction.p99_s[position])
                    if prediction is not None
                    and position < len(prediction.p99_s)
                    else math.nan
                )
                if math.isfinite(predicted) and predicted <= qos:
                    kind = "misprediction"
                else:
                    kind = "search_failure"
            metrics.counter(f"accuracy.qos_attrib.{kind}").inc()
            self.telemetry.instant(
                "qos_attribution", category="accuracy",
                quantum=quantum, service=service_idx, kind=kind,
                p99_ms=round(p99 * 1e3, 3),
            )
            log.info(
                "quantum %d: service %d QoS violation attributed to %s",
                quantum, service_idx, kind,
            )


def median_error_pct(telemetry, metric: str) -> float:
    """Median |reconstruction error| % of one audited metric (or NaN)."""
    hist = telemetry.metrics.histograms.get(f"accuracy.{metric}_err_pct")
    if hist is None:
        return math.nan
    return hist.percentile(50)


def render_accuracy_report(telemetry) -> str:
    """Human-readable audit summary (the ``repro audit`` output)."""
    metrics = telemetry.metrics
    counters = metrics.counters
    audited = counters.get("accuracy.audited_quanta")
    skipped = counters.get("accuracy.unaudited_quanta")
    lines: List[str] = ["prediction-accuracy audit", "=" * 25, ""]
    lines.append(
        f"quanta audited: {audited.value if audited else 0}"
        f" (skipped: {skipped.value if skipped else 0})"
    )
    lines.append("")
    lines.append(
        "reconstruction error (median |signed| % per app/service "
        "per quantum):"
    )
    lines.append(f"  {'metric':<10} {'count':>5} {'p50':>8} {'p95':>8}")
    for metric in AUDIT_METRICS:
        hist = metrics.histograms.get(f"accuracy.{metric}_err_pct")
        if hist is None or not hist.count:
            lines.append(f"  {metric:<10} {0:>5} {'-':>8} {'-':>8}")
            continue
        summary = hist.summary()
        lines.append(
            f"  {metric:<10} {summary['count']:>5} "
            f"{summary['p50']:>7.2f}% {summary['p95']:>7.2f}%"
        )
    flags = counters.get("accuracy.drift.flags")
    lines.append("")
    lines.append(f"drift flags: {flags.value if flags else 0}")
    auditor = getattr(telemetry, "auditor", None)
    if auditor is not None:
        for event in auditor.drift_events:
            lines.append(
                f"  quantum {event.quantum}: {event.metric} error EWMA "
                f"{event.fast_pct:.1f} % vs baseline {event.slow_pct:.1f} %"
            )
    attributed = [
        (kind, counters[f"accuracy.qos_attrib.{kind}"].value)
        for kind in QOS_ATTRIBUTION_KINDS
        if f"accuracy.qos_attrib.{kind}" in counters
    ]
    lines.append("")
    if attributed:
        lines.append("qos violations attributed:")
        for kind, value in attributed:
            lines.append(f"  {kind:<16} {value}")
    else:
        lines.append("qos violations attributed: none")
    return "\n".join(lines)

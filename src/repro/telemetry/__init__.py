"""Observability for the scheduler stack: tracing, metrics, exporters.

``repro.telemetry`` gives every run of the Fig. 3 decision loop a
first-class record of *where the time went* and *how good the
predictions were*:

* a :class:`Tracer` of nested monotonic-clock spans around each phase
  (profile, SGD reconstruction, LC scan, DDS search, reconfigure,
  slice execution) — a no-op when disabled;
* a :class:`MetricsRegistry` of counters/gauges/histograms plus
  per-quantum :class:`DecisionRecord` entries pairing predicted
  against measured BIPS/p99/power (the Fig. 5 accuracy quantity,
  tracked online);
* exporters to JSONL, Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto), and text/CSV reports;
* an opt-in :class:`AccuracyAuditor`
  (:meth:`Telemetry.enable_accuracy_audit`) that scores each quantum's
  reconstruction against the simulator's oracle tables, with EWMA
  drift detection and QoS-violation attribution — see
  ``repro.telemetry.accuracy`` and ``python -m repro audit``.

Typical use::

    from repro.telemetry import Telemetry

    telemetry = Telemetry()
    run = run_policy(machine, policy, trace, n_slices=20,
                     telemetry=telemetry)
    telemetry.write_chrome_trace("run_trace.json")
    print(telemetry.report())

See ``docs/observability.md`` for the full tour, including how the
Table II scheduling-overhead rows are derived from spans.
"""

from __future__ import annotations

from typing import Optional

from repro.telemetry.accuracy import (
    AccuracyAuditor,
    AuditConfig,
    DriftTracker,
    median_error_pct,
    render_accuracy_report,
)
from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.exporters import (
    chrome_trace_events,
    decision_records_from_jsonl,
    decisions_to_csv,
    merge_jsonl,
    read_jsonl,
    render_jsonl_report,
    render_metrics_report,
    render_prometheus,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.live import (
    CallbackSink,
    LiveAggregator,
    LiveEmitter,
    RollingWindow,
    current_emitter,
    install_emitter,
    offer,
    render_live_status,
)
from repro.telemetry.metrics import (
    Counter,
    DecisionRecord,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    signed_error_percent,
)
from repro.telemetry.profiler import (
    ProfileNode,
    build_profile,
    folded_stacks,
    profile_telemetry,
    render_phase_table,
    render_profile_table,
)
from repro.telemetry.provenance import (
    ProvenanceRecorder,
    provenance_key,
    provenance_records_from_jsonl,
    render_explain,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    Instant,
    NullTracer,
    Span,
    Tracer,
    tracer_of,
)


class Telemetry:
    """One run's telemetry session: a tracer plus a metrics registry.

    This is the object handed to ``run_policy(telemetry=...)`` and the
    CLI's ``--trace``/``--metrics`` flags.  ``enabled=False`` builds a
    session around the shared :data:`NULL_TRACER`, which instrumented
    code treats as "don't record" at near-zero cost.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.tracer = Tracer() if enabled else NULL_TRACER
        # A disabled session swaps in the shared-no-op registry so the
        # per-quantum hot loop pays no dict lookups or list appends
        # (the `telemetry.overhead_disabled` bench guards this).
        self.metrics = (
            MetricsRegistry() if enabled else NullMetricsRegistry()
        )
        #: Optional :class:`~repro.telemetry.accuracy.AccuracyAuditor`;
        #: the harness audits each quantum when one is attached.
        self.auditor: Optional[AccuracyAuditor] = None
        #: Decision-provenance flight recorder
        #: (:mod:`repro.telemetry.provenance`); the controller emits one
        #: bounded "why" record per quantum when a session is attached.
        self.provenance: Optional[ProvenanceRecorder] = (
            ProvenanceRecorder() if enabled else None
        )

    def enable_accuracy_audit(
        self, config: Optional[AuditConfig] = None
    ) -> AccuracyAuditor:
        """Attach a prediction-accuracy auditor to this session."""
        return AccuracyAuditor(self, config)

    # -- convenience pass-throughs -------------------------------------

    def span(self, name: str, category: str = "", **args):
        """Open a span on the session's tracer."""
        return self.tracer.span(name, category=category, **args)

    def instant(self, name: str, category: str = "", **args) -> None:
        """Emit a marker event on the session's tracer."""
        self.tracer.instant(name, category=category, **args)

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def record_decision(self, record: DecisionRecord) -> None:
        self.metrics.record_decision(record)

    # -- exports -------------------------------------------------------

    def write_chrome_trace(self, path_or_file) -> int:
        """Write the Chrome ``trace_event`` JSON; returns event count."""
        return write_chrome_trace(self, path_or_file)

    def write_jsonl(self, path_or_file) -> int:
        """Write the JSONL event log; returns line count."""
        return write_jsonl(self, path_or_file)

    def decisions_to_csv(self, path_or_file) -> int:
        """Write the per-quantum predicted-vs-measured CSV."""
        return decisions_to_csv(self.metrics.decisions, path_or_file)

    def report(self) -> str:
        """Human-readable metrics + span-duration summary."""
        tracer = self.tracer if isinstance(self.tracer, Tracer) else None
        return render_metrics_report(self.metrics, tracer)


__all__ = [
    "AccuracyAuditor",
    "AuditConfig",
    "CallbackSink",
    "Counter",
    "DecisionRecord",
    "DriftTracker",
    "Gauge",
    "Histogram",
    "Instant",
    "LiveAggregator",
    "LiveEmitter",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullMetricsRegistry",
    "NullTracer",
    "ProfileNode",
    "ProvenanceRecorder",
    "RollingWindow",
    "Span",
    "Telemetry",
    "Tracer",
    "build_profile",
    "chrome_trace_events",
    "current_emitter",
    "decision_records_from_jsonl",
    "decisions_to_csv",
    "folded_stacks",
    "install_emitter",
    "median_error_pct",
    "merge_jsonl",
    "offer",
    "profile_telemetry",
    "provenance_key",
    "provenance_records_from_jsonl",
    "read_jsonl",
    "render_accuracy_report",
    "render_dashboard",
    "render_explain",
    "render_jsonl_report",
    "render_live_status",
    "render_metrics_report",
    "render_phase_table",
    "render_profile_table",
    "render_prometheus",
    "signed_error_percent",
    "tracer_of",
    "write_chrome_trace",
    "write_jsonl",
]

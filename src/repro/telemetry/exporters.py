"""Telemetry exporters: JSONL, Chrome trace_event JSON, text/CSV.

Three sinks for one :class:`repro.telemetry.Telemetry` session:

* :func:`write_jsonl` — every span, instant, counter, histogram and
  decision record as one JSON object per line.  This is the archival
  format ``python -m repro telemetry-report`` reads back.
* :func:`write_chrome_trace` — the Chrome ``trace_event`` format
  (JSON object with a ``traceEvents`` array of ``"ph": "X"`` complete
  events), loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
  Span nesting renders as stacked slices on one track.
* :func:`render_metrics_report` / :func:`decisions_to_csv` — a
  human-readable metrics summary and a per-quantum CSV of predicted
  vs measured values.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Sequence

from repro.telemetry.metrics import DecisionRecord, MetricsRegistry
from repro.telemetry.tracer import Tracer


def _open(path_or_file, mode: str = "w"):
    if hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode, newline=""), True


def _jsonable(value):
    """Coerce numpy scalars and other oddballs to plain JSON types."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return None if math.isnan(value) else value
    item = getattr(value, "item", None)
    if item is not None:
        try:
            return _jsonable(item())
        except Exception:
            pass
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def _jsonable_args(args: Dict) -> Dict:
    return {str(k): _jsonable(v) for k, v in args.items()}


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def write_jsonl(telemetry, path_or_file) -> int:
    """Write the session as JSON Lines; returns the line count.

    Line types (``"type"`` field): ``span``, ``instant``, ``counter``,
    ``gauge``, ``histogram``, ``decision``, ``provenance``.
    """
    handle, owned = _open(path_or_file)
    lines = 0
    try:
        for span in telemetry.tracer.spans:
            handle.write(json.dumps({
                "type": "span",
                "name": span.name,
                "cat": span.category,
                "start_us": span.start_ns / 1e3,
                "dur_us": span.duration_ns / 1e3,
                "depth": span.depth,
                "id": span.id,
                "parent": span.parent,
                "args": _jsonable_args(span.args),
            }) + "\n")
            lines += 1
        for instant in telemetry.tracer.instants:
            handle.write(json.dumps({
                "type": "instant",
                "name": instant.name,
                "cat": instant.category,
                "ts_us": instant.timestamp_ns / 1e3,
                "args": _jsonable_args(instant.args),
            }) + "\n")
            lines += 1
        metrics = telemetry.metrics
        for name, counter in sorted(metrics.counters.items()):
            handle.write(json.dumps({
                "type": "counter", "name": name, "value": counter.value,
            }) + "\n")
            lines += 1
        for name, gauge in sorted(metrics.gauges.items()):
            handle.write(json.dumps({
                "type": "gauge", "name": name, "value": gauge.value,
            }) + "\n")
            lines += 1
        for name, hist in sorted(metrics.histograms.items()):
            handle.write(json.dumps({
                "type": "histogram",
                "name": name,
                "summary": {
                    k: _jsonable(v) for k, v in hist.summary().items()
                },
            }) + "\n")
            lines += 1
        for record in metrics.decisions:
            handle.write(json.dumps({
                "type": "decision",
                "quantum": record.quantum,
                "predicted_bips": _jsonable(record.predicted_bips),
                "measured_bips": _jsonable(record.measured_bips),
                "predicted_p99_s": _jsonable(record.predicted_p99_s),
                "measured_p99_s": _jsonable(record.measured_p99_s),
                "predicted_power_w": _jsonable(record.predicted_power_w),
                "measured_power_w": _jsonable(record.measured_power_w),
            }) + "\n")
            lines += 1
        recorder = getattr(telemetry, "provenance", None)
        if recorder is not None:
            # Provenance records are built JSON-ready by the controller
            # (deterministic values only); sort_keys makes the archival
            # bytes canonical so replay diffs compare file lines.
            for record in recorder.records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                lines += 1
    finally:
        if owned:
            handle.close()
    return lines


def read_jsonl(path_or_file) -> List[Dict]:
    """Parse a JSONL event log back into a list of dicts."""
    handle, owned = _open(path_or_file, mode="r")
    try:
        return [json.loads(line) for line in handle if line.strip()]
    finally:
        if owned:
            handle.close()


def merge_jsonl(per_unit, path_or_file=None) -> List[Dict]:
    """Merge per-unit (per-worker) JSONL logs into one canonical log.

    Naively concatenating per-worker shard files interleaves quanta out
    of order — ``decision_records_from_jsonl`` round-trips one file but
    not a concatenation.  This helper takes ``(unit_id, records)``
    pairs (``records`` may also be a path readable by
    :func:`read_jsonl`) and produces a single record list whose order
    is a function of *content only*, never of completion order:

    * ``span``/``instant`` lines keep their within-unit order, grouped
      per unit, units in sorted-id order, each tagged ``"unit"``;
    * ``counter`` lines are summed across units per name (sorted by
      name) — counters are the RNG-safe quantities CI gates on;
    * ``gauge``/``histogram`` lines cannot be meaningfully combined, so
      they are tagged ``"unit"`` and sorted by ``(name, unit)``;
    * ``decision`` lines are tagged ``"unit"`` and sorted by
      ``(quantum, unit)``, so per-quantum analysis reads them in
      simulation order;
    * ``provenance`` lines follow the decision convention: tagged
      ``"unit"``, sorted by ``(quantum, unit)``.

    Duplicate unit ids raise ``ValueError``.  With ``path_or_file``
    set, the merged records are also written as JSONL.  Returns the
    merged record list.
    """
    resolved: List[tuple] = []
    seen = set()
    for unit_id, records in per_unit:
        if unit_id in seen:
            raise ValueError(f"duplicate unit id {unit_id!r} in merge")
        seen.add(unit_id)
        if not isinstance(records, (list, tuple)):
            records = read_jsonl(records)
        resolved.append((unit_id, list(records)))
    resolved.sort(key=lambda pair: pair[0])

    traces: List[Dict] = []
    counters: Dict[str, float] = {}
    gauges: List[Dict] = []
    histograms: List[Dict] = []
    decisions: List[Dict] = []
    provenance: List[Dict] = []
    for unit_id, records in resolved:
        for rec in records:
            kind = rec.get("type")
            if kind in ("span", "instant"):
                traces.append({**rec, "unit": unit_id})
            elif kind == "counter":
                counters[rec["name"]] = (
                    counters.get(rec["name"], 0) + rec["value"]
                )
            elif kind == "gauge":
                gauges.append({**rec, "unit": unit_id})
            elif kind == "histogram":
                histograms.append({**rec, "unit": unit_id})
            elif kind == "decision":
                decisions.append({**rec, "unit": unit_id})
            elif kind == "provenance":
                provenance.append({**rec, "unit": unit_id})
    gauges.sort(key=lambda r: (r["name"], r["unit"]))
    histograms.sort(key=lambda r: (r["name"], r["unit"]))
    decisions.sort(key=lambda r: (r["quantum"], r["unit"]))
    provenance.sort(key=lambda r: (r["quantum"], r["unit"]))
    merged = (
        traces
        + [
            {"type": "counter", "name": name, "value": counters[name]}
            for name in sorted(counters)
        ]
        + gauges
        + histograms
        + decisions
        + provenance
    )
    if path_or_file is not None:
        handle, owned = _open(path_or_file)
        try:
            for rec in merged:
                handle.write(json.dumps(rec) + "\n")
        finally:
            if owned:
                handle.close()
    return merged


def decision_records_from_jsonl(records: Iterable[Dict]) -> List[DecisionRecord]:
    """Rebuild :class:`DecisionRecord` objects from parsed JSONL lines.

    The inverse of :func:`write_jsonl`'s ``decision`` lines: JSON has
    no NaN, so ``null`` entries (gated jobs, cold-start predictions)
    come back as NaN — a write -> read -> re-export cycle is lossless.
    """
    def _num(value) -> float:
        return math.nan if value is None else float(value)

    def _tup(values) -> tuple:
        return tuple(_num(v) for v in (values or ()))

    out: List[DecisionRecord] = []
    for rec in records:
        if rec.get("type") != "decision":
            continue
        out.append(DecisionRecord(
            quantum=int(rec["quantum"]),
            predicted_bips=_tup(rec.get("predicted_bips")),
            measured_bips=_tup(rec.get("measured_bips")),
            predicted_p99_s=_tup(rec.get("predicted_p99_s")),
            measured_p99_s=_tup(rec.get("measured_p99_s")),
            predicted_power_w=_num(rec.get("predicted_power_w")),
            measured_power_w=_num(rec.get("measured_power_w")),
        ))
    return out


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------

def chrome_trace_events(telemetry) -> List[Dict]:
    """The session as Chrome ``trace_event`` dicts (``ph: X``/``i``).

    The metadata event leads; timed events follow sorted by start
    timestamp (the tracer records spans in *completion* order, which
    viewers tolerate but stream parsers need not).
    """
    events: List[Dict] = []
    for span in telemetry.tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.category or "scheduler",
            "ph": "X",
            "ts": span.start_ns / 1e3,   # trace_event wants microseconds
            "dur": span.duration_ns / 1e3,
            "pid": 1,
            "tid": 1,
            "args": _jsonable_args(span.args),
        })
    for instant in telemetry.tracer.instants:
        events.append({
            "name": instant.name,
            "cat": instant.category or "scheduler",
            "ph": "i",
            "ts": instant.timestamp_ns / 1e3,
            "pid": 1,
            "tid": 1,
            "s": "t",
            "args": _jsonable_args(instant.args),
        })
    events.sort(key=lambda event: event["ts"])
    return [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 0,
        "args": {"name": "repro scheduler"},
    }] + events


def write_chrome_trace(telemetry, path_or_file) -> int:
    """Write Chrome trace JSON; returns the number of trace events."""
    events = chrome_trace_events(telemetry)
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "counters": {
                n: c.value
                for n, c in sorted(telemetry.metrics.counters.items())
            },
        },
    }
    handle, owned = _open(path_or_file)
    try:
        json.dump(payload, handle)
    finally:
        if owned:
            handle.close()
    return len(events)


# ----------------------------------------------------------------------
# Text / CSV reports
# ----------------------------------------------------------------------

def render_metrics_report(metrics: MetricsRegistry,
                          tracer: Optional[Tracer] = None) -> str:
    """Human-readable summary: counters, histograms, span durations."""
    lines: List[str] = ["telemetry metrics report", "=" * 24]
    if metrics.counters:
        lines.append("")
        lines.append("counters:")
        for name, counter in sorted(metrics.counters.items()):
            lines.append(f"  {name:<36} {counter.value}")
    if metrics.gauges:
        lines.append("")
        lines.append("gauges:")
        for name, gauge in sorted(metrics.gauges.items()):
            lines.append(f"  {name:<36} {gauge.value:.4g}")
    if metrics.histograms:
        lines.append("")
        lines.append(
            f"histograms:{'':<29} count    mean     p50     p95     p99"
        )
        for name, hist in sorted(metrics.histograms.items()):
            s = hist.summary()
            lines.append(
                f"  {name:<36} {s['count']:>5} "
                f"{s['mean']:>7.2f} {s['p50']:>7.2f} "
                f"{s['p95']:>7.2f} {s['p99']:>7.2f}"
            )
    if tracer is not None and tracer.spans:
        lines.append("")
        lines.append(
            f"span durations (ms):{'':<20} count    mean     p50     p95"
        )
        by_name: Dict[str, Histogram] = {}
        from repro.telemetry.metrics import Histogram as _H
        for span in tracer.spans:
            by_name.setdefault(span.name, _H(span.name)).observe(
                span.duration_s * 1e3
            )
        for name in sorted(by_name):
            s = by_name[name].summary()
            lines.append(
                f"  {name:<36} {s['count']:>5} "
                f"{s['mean']:>7.3f} {s['p50']:>7.3f} {s['p95']:>7.3f}"
            )
    if metrics.decisions:
        lines.append("")
        lines.append(f"decision records: {len(metrics.decisions)} quanta")
    return "\n".join(lines)


def decisions_to_csv(decisions: Sequence[DecisionRecord],
                     path_or_file) -> int:
    """Per-quantum predicted-vs-measured CSV; returns rows written."""
    import csv

    handle, owned = _open(path_or_file)
    try:
        writer = csv.writer(handle)
        writer.writerow([
            "quantum",
            "predicted_gmean_bips", "measured_gmean_bips", "bips_err_pct",
            "predicted_p99_s", "measured_p99_s", "p99_err_pct",
            "predicted_power_w", "measured_power_w", "power_err_pct",
        ])
        rows = 0
        for rec in decisions:
            bips_errs = rec.bips_errors_percent()
            p99_errs = rec.p99_errors_percent()
            pred_bips = [b for b in rec.predicted_bips if not math.isnan(b)]
            meas_bips = [
                b for b in rec.measured_bips if not math.isnan(b) and b > 0
            ]

            def gmean(xs: List[float]) -> float:
                pos = [x for x in xs if x > 0]
                if not pos:
                    return math.nan
                return math.exp(sum(math.log(x) for x in pos) / len(pos))

            def fmt(x: float) -> str:
                return "" if math.isnan(x) else f"{x:.6g}"

            writer.writerow([
                rec.quantum,
                fmt(gmean(pred_bips)),
                fmt(gmean(meas_bips)),
                fmt(sum(bips_errs) / len(bips_errs)) if bips_errs else "",
                fmt(rec.predicted_p99_s[0] if rec.predicted_p99_s
                    else math.nan),
                fmt(rec.measured_p99_s[0] if rec.measured_p99_s
                    else math.nan),
                fmt(p99_errs[0]) if p99_errs else "",
                fmt(rec.predicted_power_w),
                fmt(rec.measured_power_w),
                fmt(rec.power_error_percent()),
            ])
            rows += 1
        return rows
    finally:
        if owned:
            handle.close()


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prometheus_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar.

    ``fleet.units_total`` -> ``repro_fleet_units_total``: dots and any
    other illegal characters become underscores under a ``repro_``
    namespace prefix (docs/observability.md documents the mapping).
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"repro_{cleaned}"


def _prometheus_value(value) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(val)}"'
        for key, val in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(metrics) -> str:
    """Render metrics in the Prometheus text exposition format (v0.0.4).

    ``metrics`` is either a live :class:`MetricsRegistry` (or the
    ``Telemetry.metrics`` attribute) or an iterable of parsed JSONL
    records (the archival/merged form) — merged records keep their
    ``unit`` tag as a label.  Counters render with the conventional
    ``_total`` suffix, histograms as summaries (``quantile`` series
    plus ``_count``/``_sum``), so a control-plane daemon can scrape a
    run's state without bespoke parsing.
    """
    counters: List[tuple] = []
    gauges: List[tuple] = []
    summaries: List[tuple] = []
    if hasattr(metrics, "counters"):
        for name, counter in sorted(metrics.counters.items()):
            counters.append((name, {}, counter.value))
        for name, gauge in sorted(metrics.gauges.items()):
            gauges.append((name, {}, gauge.value))
        for name, hist in sorted(metrics.histograms.items()):
            summary = hist.summary()
            summary["sum"] = sum(hist.samples)
            summaries.append((name, {}, summary))
        gauges.append(("decisions", {}, len(metrics.decisions)))
    else:
        decisions = 0
        for rec in metrics:
            kind = rec.get("type")
            labels = (
                {"unit": rec["unit"]} if rec.get("unit") is not None else {}
            )
            if kind == "counter":
                counters.append((rec["name"], labels, rec["value"]))
            elif kind == "gauge":
                gauges.append((rec["name"], labels, rec["value"]))
            elif kind == "histogram":
                summary = dict(rec.get("summary", {}))
                count = summary.get("count", 0) or 0
                mean = summary.get("mean")
                summary["sum"] = (
                    mean * count if isinstance(mean, (int, float)) else 0.0
                )
                summaries.append((rec["name"], labels, summary))
            elif kind == "decision":
                decisions += 1
        gauges.append(("decisions", {}, decisions))

    lines: List[str] = []

    def emit_header(name: str, source: str, kind: str) -> None:
        lines.append(f"# HELP {name} repro metric {source}")
        lines.append(f"# TYPE {name} {kind}")

    seen = set()
    for name, labels, value in counters:
        metric = _prometheus_name(name) + "_total"
        if metric not in seen:
            seen.add(metric)
            emit_header(metric, name, "counter")
        lines.append(
            f"{metric}{_prometheus_labels(labels)} "
            f"{_prometheus_value(value)}"
        )
    for name, labels, value in gauges:
        metric = _prometheus_name(name)
        if metric not in seen:
            seen.add(metric)
            emit_header(metric, name, "gauge")
        lines.append(
            f"{metric}{_prometheus_labels(labels)} "
            f"{_prometheus_value(value)}"
        )
    for name, labels, summary in summaries:
        metric = _prometheus_name(name)
        if metric not in seen:
            seen.add(metric)
            emit_header(metric, name, "summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("0.99", "p99")):
            value = summary.get(key)
            if not isinstance(value, (int, float)):
                continue
            q_labels = dict(labels)
            q_labels["quantile"] = quantile
            lines.append(
                f"{metric}{_prometheus_labels(q_labels)} "
                f"{_prometheus_value(value)}"
            )
        label_text = _prometheus_labels(labels)
        lines.append(
            f"{metric}_count{label_text} "
            f"{_prometheus_value(summary.get('count', 0) or 0)}"
        )
        lines.append(
            f"{metric}_sum{label_text} "
            f"{_prometheus_value(summary.get('sum', 0.0) or 0.0)}"
        )
    return "\n".join(lines) + "\n"


def render_jsonl_report(records: Iterable[Dict]) -> str:
    """Summarise a parsed JSONL event log (``telemetry-report`` CLI).

    Aggregates span durations by name (count/total/mean/p95) — this is
    exactly how the Table II scheduling-overhead rows are derived from
    a trace — and echoes counters, histograms, and the decision count.
    """
    from repro.telemetry.metrics import Histogram as _H

    spans: Dict[str, _H] = {}
    counters: Dict[str, float] = {}
    histograms: List[Dict] = []
    decisions = 0
    instants = 0
    provenance = 0
    for rec in records:
        kind = rec.get("type")
        if kind == "span":
            spans.setdefault(rec["name"], _H(rec["name"])).observe(
                rec["dur_us"] / 1e3
            )
        elif kind == "counter":
            counters[rec["name"]] = rec["value"]
        elif kind == "histogram":
            histograms.append(rec)
        elif kind == "decision":
            decisions += 1
        elif kind == "instant":
            instants += 1
        elif kind == "provenance":
            provenance += 1
    lines = ["telemetry report", "=" * 16]
    if spans:
        lines.append("")
        lines.append(
            f"span durations (ms):{'':<16} count   total    mean     p95"
        )
        for name in sorted(spans):
            s = spans[name].summary()
            total = sum(spans[name].samples)
            lines.append(
                f"  {name:<32} {s['count']:>5} {total:>7.1f} "
                f"{s['mean']:>7.3f} {s['p95']:>7.3f}"
            )
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<36} {counters[name]}")
    if histograms:
        lines.append("")
        lines.append(
            f"histograms:{'':<25} count    mean     p50     p95     p99"
        )
        for rec in sorted(histograms, key=lambda r: r["name"]):
            s = rec["summary"]

            def num(key: str) -> str:
                v = s.get(key)
                return f"{v:>7.2f}" if isinstance(v, (int, float)) else "      -"

            lines.append(
                f"  {rec['name']:<32} {s.get('count', 0):>5} "
                f"{num('mean')} {num('p50')} {num('p95')} {num('p99')}"
            )
    lines.append("")
    summary = f"decision records: {decisions}, instants: {instants}"
    if provenance:
        summary += f", provenance: {provenance}"
    lines.append(summary)
    return "\n".join(lines)
